//! Kernel-level performance harness for the deterministic data-parallel
//! tensor layer: times the hot kernels (dense matmul, decoder-shaped
//! scoring, conv forward, evaluation rank fan-out) at fixed shapes across
//! a worker-thread sweep, plus serial *seed-reference* copies of the
//! pre-parallel kernels so the speedup over the old implementation is
//! measurable within one run.
//!
//! Results go to `BENCH_kernels.json` (atomic write) so successive runs
//! can be diffed as a perf trajectory. The whole binary runs under a
//! counting global allocator so the suite can also report
//! `allocs_per_call` — heap allocations per steady-state no-grad
//! forward+score+top-k serving call after arena warmup (pinned at 0).
//!
//! ```text
//! kernels [--quick] [--out FILE]    run the suite (quick: CI-sized)
//!         [--regress BASE [--tolerance F]]
//!                                   then gate threads=1 medians against a
//!                                   baseline results file (default 0.25)
//! kernels --check FILE              validate a results file parses
//! ```

use hisres::topk::{topk_row_into, BlockNorms, TopkScratch};
use hisres_graph::{Quad, TimeFilter};
use hisres_nn::{ConvTransE, GruCell};
use hisres_tensor::{no_grad, NdArray, ParamStore, Scratch};
use hisres_util::alloc::CountingAlloc;
use hisres_util::bench::{time_fn, BenchStats, Criterion};
use hisres_util::json::FromJson;
use hisres_util::pool::with_threads;
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;
use hisres_util::{fsio, impl_json, json};
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Thread counts swept for every parallel kernel.
const THREADS: [usize; 3] = [1, 2, 4];

/// The `BENCH_kernels.json` document.
struct BenchFile {
    /// Format tag for downstream tooling.
    schema: String,
    /// True when produced by `--quick` (smaller shapes, fewer samples —
    /// not comparable with full runs).
    quick: bool,
    /// Heap allocations per steady-state no-grad forward+score+top-k call
    /// (GRU advance + decoder query + pruned top-k) after one warmup call
    /// filled the scratch arena, measured under a 1-thread pool. The
    /// zero-allocation contract pins this at exactly 0.
    allocs_per_call: f64,
    /// One entry per (kernel, thread count).
    results: Vec<BenchStats>,
}

impl_json!(BenchFile { schema, quick, allocs_per_call, results });

const SCHEMA: &str = "hisres-bench-kernels/v1";

/// The seed repository's serial matmul: zero-skip rows, scalar axpy inner
/// loop. Kept verbatim as the within-run baseline the parallel kernel is
/// compared against.
fn matmul_seed_reference(a: &NdArray, b: &NdArray) -> NdArray {
    let (n, _) = a.shape();
    let (_, m) = b.shape();
    let mut out = NdArray::zeros(n, m);
    for i in 0..n {
        let a_row = a.row(i);
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 { // lint:allow(float-eq): exact zero-skip fast path must match the kernel's bitwise check
                continue;
            }
            let b_row = b.row(kk);
            let o_row = out.row_mut(i);
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// The seed repository's serial `A · Bᵀ`: single-accumulator dot per cell.
fn matmul_nt_seed_reference(a: &NdArray, b: &NdArray) -> NdArray {
    let (n, _) = a.shape();
    let (m, _) = b.shape();
    let mut out = NdArray::zeros(n, m);
    for i in 0..n {
        let a_row = a.row(i);
        for j in 0..m {
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b.row(j)) {
                acc += x * y;
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Deterministic pseudo-random buffer (no RNG dependency needed here).
fn noise(len: usize, mut seed: u64) -> Vec<f32> {
    (0..len)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 40) as f32 / 8388608.0 - 1.0
        })
        .collect()
}

struct Shapes {
    /// Square matmul side.
    mm: usize,
    /// Decoder scoring: queries × dim against entities × dim.
    queries: usize,
    dim: usize,
    entities: usize,
    /// Rank fan-out rows.
    rank_rows: usize,
}

/// Heap allocations per steady-state serving call, after warmup.
///
/// Composes the actual serving hot path — GRU encoder advance over the
/// entity matrix, ConvTransE decoder query, Cauchy–Schwarz-pruned top-k
/// per query row — entirely out of the scratch arena, warms it up with
/// one call, then counts allocator hits across `CALLS` further calls.
/// Runs under a 1-thread pool, the configuration the zero-allocation
/// contract is specified for (`par_chunks_mut` executes inline there).
fn measure_allocs_per_call(shapes: &Shapes) -> f64 {
    const K: usize = 10;
    const CALLS: u64 = 16;
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(42);
    let gru = GruCell::new(&mut store, "gru", shapes.dim, &mut rng);
    let dec = ConvTransE::new(&mut store, "dec", shapes.dim, 4, 3, 0.0, &mut rng);
    let table =
        NdArray::from_vec(noise(shapes.entities * shapes.dim, 21), &[shapes.entities, shapes.dim]);
    let agg =
        NdArray::from_vec(noise(shapes.entities * shapes.dim, 22), &[shapes.entities, shapes.dim]);
    let s_emb =
        NdArray::from_vec(noise(shapes.queries * shapes.dim, 23), &[shapes.queries, shapes.dim]);
    let r_emb =
        NdArray::from_vec(noise(shapes.queries * shapes.dim, 24), &[shapes.queries, shapes.dim]);
    let norms = BlockNorms::new(&table);
    let mut scratch = Scratch::new();
    let mut ws = TopkScratch::new();
    let mut out: Vec<(u32, f32)> = Vec::new();

    with_threads(1, || {
        let mut call = || {
            no_grad(|| {
                let h = gru.forward_nograd(&agg, &table, &mut scratch);
                let q = dec.query_nograd(&s_emb, &r_emb, &mut scratch);
                for i in 0..shapes.queries {
                    topk_row_into(q.row(i), &table, Some(&norms), K, &mut ws, &mut out);
                }
                scratch.give(h);
                scratch.give(q);
            });
        };
        call(); // warmup: fills the arena pools, grows the top-k buffers
        let before = ALLOC.allocations();
        for _ in 0..CALLS {
            call();
        }
        (ALLOC.allocations() - before) as f64 / CALLS as f64
    })
}

fn run_suite(quick: bool, out_path: &str) -> Result<BenchFile, String> {
    let (config, shapes) = if quick {
        (
            Criterion::default()
                .sample_size(5)
                .measurement_time(Duration::from_millis(120))
                .warm_up_time(Duration::from_millis(40)),
            Shapes { mm: 96, queries: 32, dim: 32, entities: 512, rank_rows: 64 },
        )
    } else {
        (
            Criterion::default()
                .sample_size(15)
                .measurement_time(Duration::from_millis(900))
                .warm_up_time(Duration::from_millis(250)),
            Shapes { mm: 256, queries: 64, dim: 64, entities: 4096, rank_rows: 256 },
        )
    };

    let mm_a = NdArray::from_vec(noise(shapes.mm * shapes.mm, 1), &[shapes.mm, shapes.mm]);
    let mm_b = NdArray::from_vec(noise(shapes.mm * shapes.mm, 2), &[shapes.mm, shapes.mm]);
    let q = NdArray::from_vec(noise(shapes.queries * shapes.dim, 3), &[shapes.queries, shapes.dim]);
    let table =
        NdArray::from_vec(noise(shapes.entities * shapes.dim, 4), &[shapes.entities, shapes.dim]);
    let conv_x = NdArray::from_vec(
        noise(shapes.queries * 2 * shapes.dim, 5),
        &[shapes.queries, 2 * shapes.dim],
    );
    let conv_w = NdArray::from_vec(noise(8 * 2 * 3, 6), &[8, 6]);

    // Rank fan-out inputs: a score matrix plus a filter with a handful of
    // true objects per query, mirroring `hisres::eval`'s inner loop.
    let scores = NdArray::from_vec(
        noise(shapes.rank_rows * shapes.entities, 7),
        &[shapes.rank_rows, shapes.entities],
    );
    let truth: Vec<Quad> = (0..shapes.rank_rows as u32)
        .flat_map(|i| (0..4u32).map(move |j| Quad::new(i, i % 7, (i * 13 + j) % 512, 0)))
        .collect();
    let filter = TimeFilter::from_quads(truth.iter());
    let golds: Vec<Quad> = (0..shapes.rank_rows as u32)
        .map(|i| Quad::new(i, i % 7, (i * 13) % 512, 0))
        .collect();

    let mut results: Vec<BenchStats> = Vec::new();
    let mut record = |s: BenchStats| {
        println!("{}", s.row());
        results.push(s);
    };

    // Seed-reference serial kernels (1 thread by construction).
    record(time_fn("matmul_seed_serial", 1, &config, || {
        matmul_seed_reference(&mm_a, &mm_b)
    }));
    record(time_fn("decoder_score_seed_serial", 1, &config, || {
        matmul_nt_seed_reference(&q, &table)
    }));

    // Arena-backed decoder output: one buffer reused across every timed
    // call, the shape `serve.rs` steady state runs in.
    let mut arena_out = NdArray::zeros(shapes.queries, shapes.entities);

    for t in THREADS {
        record(with_threads(t, || {
            time_fn("matmul", t, &config, || mm_a.matmul(&mm_b))
        }));
        record(with_threads(t, || {
            // decoder scoring: A·Bᵀ against the entity table in no-grad
            // mode (blocked dot), the serve/eval hot path — directly
            // comparable with `decoder_score_seed_serial`
            time_fn("decoder_score", t, &config, || {
                no_grad(|| q.matmul_nt(&table))
            })
        }));
        record(with_threads(t, || {
            // same kernel, writing into a caller-owned reused buffer:
            // isolates the allocation/zero-fill overhead `Scratch` removes
            time_fn("decoder_score_arena", t, &config, || {
                no_grad(|| q.matmul_nt_into(&table, &mut arena_out))
            })
        }));
        record(with_threads(t, || {
            time_fn("conv_forward", t, &config, || {
                no_grad(|| {
                    let xs = hisres_tensor::Tensor::constant(conv_x.clone());
                    let ws = hisres_tensor::Tensor::constant(conv_w.clone());
                    xs.conv1d_same(&ws, 2, 3).value_clone()
                })
            })
        }));
        record(with_threads(t, || {
            time_fn("eval_rank_fanout", t, &config, || {
                let mut ranks = vec![0.0f64; golds.len()];
                hisres_util::pool::current().par_chunks_mut(&mut ranks, 1, 8, |off, chunk| {
                    for (i, r) in chunk.iter_mut().enumerate() {
                        *r = filter.filtered_rank(scores.row(off + i), &golds[off + i]);
                    }
                });
                ranks
            })
        }));
    }

    // Top-k short-circuit scoring over a norm-skewed entity table. Trained
    // embedding tables have strongly non-uniform row norms (high-degree
    // entities dominate), which is exactly what the Cauchy–Schwarz block
    // bounds exploit; the iid-noise `table` above is the pruning worst
    // case (bounds never cross the threshold, the scorer degrades to a
    // dense scan plus heap upkeep). Dense cost at these shapes is
    // `decoder_score` at 1 thread — matmul time is value-independent, so
    // it doubles as the same-table dense reference.
    let mut skewed = table.clone();
    for i in 0..shapes.entities {
        let scale = 1.0 / (1.0 + 16.0 * i as f32 / shapes.entities as f32);
        for v in skewed.row_mut(i) {
            *v *= scale;
        }
    }
    let norms = BlockNorms::new(&skewed);
    let mut ws = TopkScratch::new();
    let mut topk_out: Vec<(u32, f32)> = Vec::new();
    record(with_threads(1, || {
        time_fn("decoder_score_topk", 1, &config, || {
            no_grad(|| {
                for i in 0..shapes.queries {
                    topk_row_into(q.row(i), &skewed, Some(&norms), 10, &mut ws, &mut topk_out);
                }
            })
        })
    }));

    let allocs_per_call = measure_allocs_per_call(&shapes);
    println!("{:<36}  steady-state allocs/call: {allocs_per_call}", "alloc_harness");

    let doc = BenchFile { schema: SCHEMA.to_owned(), quick, allocs_per_call, results };
    let text = json::to_string(&doc).map_err(|e| format!("serialising results: {e}"))?;
    fsio::atomic_write(out_path, text.as_bytes())
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("\nwrote {} results to {out_path}", doc.results.len());
    Ok(doc)
}

fn load_file(path: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let doc = BenchFile::from_json(&value).map_err(|e| format!("{path}: bad schema: {e}"))?;
    if doc.schema != SCHEMA {
        return Err(format!("{path}: schema {:?}, expected {SCHEMA:?}", doc.schema));
    }
    if doc.results.is_empty() {
        return Err(format!("{path}: no benchmark results"));
    }
    for s in &doc.results {
        if !(s.median_ns.is_finite() && s.median_ns > 0.0) {
            return Err(format!("{path}: {} has non-positive median", s.name));
        }
    }
    if !(doc.allocs_per_call.is_finite() && doc.allocs_per_call >= 0.0) {
        return Err(format!("{path}: allocs_per_call {} is not a count", doc.allocs_per_call));
    }
    Ok(doc)
}

fn check_file(path: &str) -> Result<(), String> {
    let doc = load_file(path)?;
    println!(
        "{path}: ok — {} results ({}), {} allocs/call{}",
        doc.results.len(),
        doc.results
            .iter()
            .map(|s| s.name.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
            .join(", "),
        doc.allocs_per_call,
        if doc.quick { " [quick]" } else { "" },
    );
    Ok(())
}

/// Kernels gated by `--regress`: a fresh run's threads=1 median may not
/// regress past the baseline's by more than the tolerance.
const GATE_KERNELS: [&str; 3] = ["matmul", "decoder_score", "eval_rank_fanout"];

fn regress_check(
    doc: &BenchFile,
    base: &BenchFile,
    base_path: &str,
    tolerance: f64,
) -> Result<(), String> {
    let mode = |quick: bool| if quick { "--quick" } else { "full" };
    if base.quick != doc.quick {
        return Err(format!(
            "{base_path}: baseline is a {} run but this run is {} — medians are not comparable",
            mode(base.quick),
            mode(doc.quick),
        ));
    }
    let median = |file: &BenchFile, name: &str| {
        file.results
            .iter()
            .find(|s| s.name == name && s.threads == 1)
            .map(|s| s.median_ns)
    };
    let mut regressed: Vec<&str> = Vec::new();
    println!();
    for name in GATE_KERNELS {
        let b = median(base, name)
            .ok_or_else(|| format!("{base_path}: no threads=1 result for {name}"))?;
        let c = median(doc, name)
            .ok_or_else(|| format!("fresh run has no threads=1 result for {name}"))?;
        let delta = c / b - 1.0;
        let verdict = if delta > tolerance {
            regressed.push(name);
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "regress {name:<20} base {b:>12.0} ns  now {c:>12.0} ns  ({:+6.1}%)  {verdict}",
            delta * 100.0,
        );
    }
    if regressed.is_empty() {
        println!(
            "regression gate: OK (threads=1 medians within {:.0}% of {base_path})",
            tolerance * 100.0,
        );
        Ok(())
    } else {
        Err(format!(
            ">{:.0}% median regression vs {base_path} on: {}",
            tolerance * 100.0,
            regressed.join(", "),
        ))
    }
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_kernels.json".to_owned();
    let mut check: Option<String> = None;
    let mut regress: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => return usage("--out needs a path"),
            },
            "--check" => match it.next() {
                Some(v) => check = Some(v.clone()),
                None => return usage("--check needs a path"),
            },
            "--regress" => match it.next() {
                Some(v) => regress = Some(v.clone()),
                None => return usage("--regress needs a baseline path"),
            },
            "--tolerance" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(t)) if t.is_finite() && t >= 0.0 => tolerance = t,
                _ => return usage("--tolerance needs a non-negative number"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let r = match check {
        Some(path) => check_file(&path),
        None => {
            // Load the baseline up front: --out may point at the same file.
            let base = match &regress {
                Some(p) => match load_file(p) {
                    Ok(b) => Some((b, p.clone())),
                    Err(e) => return fail(&e),
                },
                None => None,
            };
            run_suite(quick, &out).and_then(|doc| match base {
                Some((b, p)) => regress_check(&doc, &b, &p, tolerance),
                None => Ok(()),
            })
        }
    };
    match r {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn fail(e: &str) -> std::process::ExitCode {
    eprintln!("error: {e}");
    std::process::ExitCode::FAILURE
}

fn usage(msg: &str) -> std::process::ExitCode {
    eprintln!(
        "error: {msg}\nusage: kernels [--quick] [--out FILE] [--regress BASE [--tolerance F]] \
         | kernels --check FILE"
    );
    std::process::ExitCode::FAILURE
}
