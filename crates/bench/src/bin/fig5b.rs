//! Regenerates Figure 5(b): sensitivity of HisRES to the number of GNN
//! hidden layers (CompGCN in the evolutionary encoder, ConvGAT in the
//! global encoder) on the ICEWS14s analog. The paper reports 2 layers
//! beating both 1 (too shallow for 2-hop structure) and 3 (oversmoothing).
//!
//! `cargo run --release -p hisres-bench --bin fig5b` (append `--quick`).

use hisres_bench::harness::{run_hisres, BenchSettings};
use hisres_bench::paper::FIG5B_BEST_LAYERS;
use hisres_data::datasets::load;

fn main() {
    let settings = BenchSettings::from_env();
    let data = load("icews14s-syn");
    println!("Figure 5(b) — GNN hidden-layer sweep on icews14s-syn");
    println!("(paper: best at {FIG5B_BEST_LAYERS} layers)");
    println!();
    println!("{:<8} {:>8} {:>8} {:>8} {:>8}", "layers", "MRR", "H@1", "H@3", "H@10");
    let mut series = Vec::new();
    for layers in 1..=3usize {
        let mut cfg = settings.hisres_config();
        cfg.gnn_layers = layers;
        let row = run_hisres(&cfg, &data, &settings);
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            layers, row.metrics[0], row.metrics[1], row.metrics[2], row.metrics[3]
        );
        series.push((layers, row.metrics[0]));
    }
    let best = series.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
    println!();
    println!("measured best layer count: {} (MRR {:.2})", best.0, best.1);
}
