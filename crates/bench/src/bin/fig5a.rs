//! Regenerates Figure 5(a): sensitivity of HisRES to the granularity
//! level (how many adjacent snapshots the inter-snapshot branch merges)
//! on the ICEWS14s analog. The paper reports a near-flat curve with the
//! best value at 2.
//!
//! `cargo run --release -p hisres-bench --bin fig5a` (append `--quick`).

use hisres_bench::harness::{run_hisres, BenchSettings};
use hisres_bench::paper::FIG5A_BEST_GRANULARITY;
use hisres_data::datasets::load;

fn main() {
    let settings = BenchSettings::from_env();
    let data = load("icews14s-syn");
    println!("Figure 5(a) — granularity-level sweep on icews14s-syn");
    println!("(paper: near-flat MRR, maximum at granularity {FIG5A_BEST_GRANULARITY})");
    println!();
    println!("{:<12} {:>8} {:>8} {:>8} {:>8}", "granularity", "MRR", "H@1", "H@3", "H@10");
    let mut series = Vec::new();
    for g in 1..=5usize {
        let mut cfg = settings.hisres_config();
        cfg.granularity = g;
        // a window of g snapshots needs at least g of history to differ
        cfg.history_len = settings.history_len.max(g + 1);
        let row = run_hisres(&cfg, &data, &settings);
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            g, row.metrics[0], row.metrics[1], row.metrics[2], row.metrics[3]
        );
        series.push((g, row.metrics[0]));
    }
    let best = series.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
    println!();
    println!("measured best granularity: {} (MRR {:.2})", best.0, best.1);
}
