//! Online-ingestion benchmark for the WAL-backed serving path: sweeps
//! ingest batch size × state-snapshot cadence against a real
//! [`IngestSession`] over a synthetic timeline, measuring per-batch
//! ingest latency (WAL fsync + incremental encoder advance), sustained
//! quad throughput, WAL growth, and — after dropping the session — the
//! cold-restart recovery wall-clock for that exact durability
//! configuration.
//!
//! Results go to `BENCH_ingest.json` (atomic write, schema-tagged) so
//! successive runs can be diffed as a durability-cost trajectory,
//! mirroring `loadgen` / `BENCH_serve.json`.
//!
//! ```text
//! ingestbench [--quick] [--out FILE]   run the sweep (quick: CI-sized)
//! ingestbench --check FILE             validate a results file parses
//! ```

use hisres::ingest::{IngestSession, IngestSessionConfig};
use hisres::{HisRes, HisResConfig, ScoreCtx};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_util::bench::LatencyRecorder;
use hisres_util::json::{self, FromJson};
use hisres_util::{fsio, impl_json};
use std::time::Instant;

const SCHEMA: &str = "hisres-bench-ingest/v1";

/// Synthetic-world size: matches the `loadgen` serving bench so the two
/// perf files describe the same model scale.
const NUM_ENTITIES: usize = 32;
const NUM_RELATIONS: usize = 4;

/// The `BENCH_ingest.json` document.
struct BenchFile {
    /// Format tag for downstream tooling.
    schema: String,
    /// True when produced by `--quick` (fewer batches — not comparable
    /// with full runs).
    quick: bool,
    /// Ingest batches driven through every swept configuration.
    batches: usize,
    /// One entry per (batch size, snapshot cadence) point.
    results: Vec<ConfigStats>,
}

impl_json!(BenchFile { schema, quick, batches, results });

/// One swept durability configuration.
struct ConfigStats {
    /// Quads per ingest batch.
    batch_size: usize,
    /// State snapshot cadence in batches (0 = never, WAL-replay only).
    snapshot_every: u64,
    /// Batches applied (== final applied sequence number).
    batches: usize,
    /// Total quads ingested.
    quads: usize,
    /// Sustained ingestion rate over the stage wall-clock.
    throughput_qps: f64,
    /// Median per-batch ingest latency (append + fsync + encoder step).
    p50_ms: f64,
    /// Tail per-batch ingest latency (includes snapshot-writing batches).
    p99_ms: f64,
    /// WAL size after the run, before any restart.
    wal_bytes: u64,
    /// Cold-restart wall-clock: reopen the session over the same WAL and
    /// state snapshot until it is ready to serve again.
    recovery_ms: f64,
    /// WAL records replayed into the encoder during that restart —
    /// 0 when the final snapshot already covered the whole log.
    replayed_records: u64,
    /// Whether the restart resumed from a state snapshot at all.
    resumed_from_snapshot: bool,
}

impl_json!(ConfigStats {
    batch_size,
    snapshot_every,
    batches,
    quads,
    throughput_qps,
    p50_ms,
    p99_ms,
    wal_bytes,
    recovery_ms,
    replayed_records,
    resumed_from_snapshot
});

impl ConfigStats {
    fn row(&self) -> String {
        format!(
            "batch {:>3} x snapshot_every {:>3}  {:>7.0} quads/s  p50 {:>7.3} ms  \
             p99 {:>7.3} ms  wal {:>7} B  recovery {:>7.3} ms  replayed {:>3}{}",
            self.batch_size,
            self.snapshot_every,
            self.throughput_qps,
            self.p50_ms,
            self.p99_ms,
            self.wal_bytes,
            self.recovery_ms,
            self.replayed_records,
            if self.resumed_from_snapshot { "" } else { "  (no snapshot)" },
        )
    }
}

/// Deterministic quad stream: batch `seq` yields `n` triples spread over
/// the entity/relation vocabulary.
fn batch_triples(seq: u64, n: usize) -> Vec<(u32, u32, u32)> {
    (0..n)
        .map(|i| {
            let k = seq as u32 * 7 + i as u32;
            (
                k % NUM_ENTITIES as u32,
                k % NUM_RELATIONS as u32,
                (k * 3 + 1) % NUM_ENTITIES as u32,
            )
        })
        .collect()
}

/// A fresh deterministic model + scoring context over the synthetic base
/// timeline. Built once per configuration so recovery timing includes
/// exactly what a real restart does on top of it (WAL open, state load,
/// replay) and not the model construction itself.
fn build_parts() -> (HisRes, ScoreCtx) {
    let data = DatasetSplits::from_tkg(
        "ingestbench",
        "1 step",
        &generate(&SyntheticConfig {
            num_entities: NUM_ENTITIES,
            num_relations: NUM_RELATIONS,
            num_timestamps: 24,
            seed: 7,
            ..Default::default()
        })
        .tkg,
    );
    let model_cfg =
        HisResConfig { dim: 16, conv_channels: 2, history_len: 3, ..Default::default() };
    let model = HisRes::new(&model_cfg, NUM_ENTITIES, NUM_RELATIONS);
    let ctx = ScoreCtx::from_quads(NUM_ENTITIES, NUM_RELATIONS, data.all_quads());
    (model, ctx)
}

fn session_cfg(tag: &str, snapshot_every: u64) -> IngestSessionConfig {
    let wal = std::env::temp_dir()
        .join(format!("hisres_ingestbench_{tag}_{}.wal", std::process::id()));
    let mut cfg = IngestSessionConfig::new(wal);
    cfg.snapshot_every = snapshot_every;
    cfg
}

fn cleanup(cfg: &IngestSessionConfig) {
    std::fs::remove_file(&cfg.wal_path).ok();
    std::fs::remove_file(&cfg.state_path).ok();
}

/// Drives one (batch size, snapshot cadence) point end to end.
fn run_config(
    batch_size: usize,
    snapshot_every: u64,
    batches: usize,
) -> Result<ConfigStats, String> {
    let tag = format!("b{batch_size}_s{snapshot_every}");
    let cfg = session_cfg(&tag, snapshot_every);
    cleanup(&cfg);

    let (model, ctx) = build_parts();
    let mut session = IngestSession::open(model, ctx, cfg.clone())
        .map_err(|e| format!("opening ingest session: {e}"))?;

    let mut rec = LatencyRecorder::new();
    let started = Instant::now();
    for seq in 1..=batches as u64 {
        let triples = batch_triples(seq, batch_size);
        let t0 = Instant::now();
        session
            .ingest(seq, None, &triples)
            .map_err(|e| format!("ingest seq {seq}: {e}"))?;
        rec.record_ms(t0.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let wal_bytes =
        std::fs::metadata(&cfg.wal_path).map_err(|e| format!("stat WAL: {e}"))?.len();
    drop(session);

    // Cold restart over the same durable artifacts: this is the crash-
    // recovery cost a server pays for this snapshot cadence.
    let (model, ctx) = build_parts();
    let t0 = Instant::now();
    let reopened = IngestSession::open(model, ctx, cfg.clone())
        .map_err(|e| format!("reopening ingest session: {e}"))?;
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    if reopened.applied_seq() != batches as u64 {
        return Err(format!(
            "recovery lost batches: applied_seq {} after {batches} ingests",
            reopened.applied_seq()
        ));
    }
    let recovery = reopened.recovery().clone();
    drop(reopened);
    cleanup(&cfg);

    let quads = batches * batch_size;
    Ok(ConfigStats {
        batch_size,
        snapshot_every,
        batches,
        quads,
        throughput_qps: if elapsed_s > 0.0 { quads as f64 / elapsed_s } else { 0.0 },
        p50_ms: rec.percentile_ms(50.0).unwrap_or(0.0),
        p99_ms: rec.percentile_ms(99.0).unwrap_or(0.0),
        wal_bytes,
        recovery_ms,
        replayed_records: recovery.replayed_records,
        resumed_from_snapshot: recovery.resumed_from_snapshot,
    })
}

fn run_suite(quick: bool, out_path: &str) -> Result<(), String> {
    let (batch_sizes, cadences, batches): (&[usize], &[u64], usize) = if quick {
        (&[1, 16], &[1, 8], 24)
    } else {
        (&[1, 8, 64], &[1, 8, 0], 128)
    };
    let mut results = Vec::new();
    for &batch_size in batch_sizes {
        for &snapshot_every in cadences {
            let stats = run_config(batch_size, snapshot_every, batches)?;
            println!("{}", stats.row());
            results.push(stats);
        }
    }
    let doc = BenchFile { schema: SCHEMA.to_owned(), quick, batches, results };
    let text = json::to_string(&doc).map_err(|e| format!("serialising results: {e}"))?;
    fsio::atomic_write(out_path, text.as_bytes())
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("\nwrote {} configurations to {out_path}", doc.results.len());
    Ok(())
}

fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let doc = BenchFile::from_json(&value).map_err(|e| format!("{path}: bad schema: {e}"))?;
    if doc.schema != SCHEMA {
        return Err(format!("{path}: schema {:?}, expected {SCHEMA:?}", doc.schema));
    }
    if doc.results.is_empty() {
        return Err(format!("{path}: no swept configurations"));
    }
    for s in &doc.results {
        let label = format!("batch {} / snapshot_every {}", s.batch_size, s.snapshot_every);
        if !(s.throughput_qps.is_finite() && s.throughput_qps > 0.0) {
            return Err(format!("{path}: {label} has non-positive throughput"));
        }
        if !(s.p50_ms.is_finite() && s.p99_ms.is_finite() && s.p50_ms <= s.p99_ms) {
            return Err(format!("{path}: {label} has inconsistent percentiles"));
        }
        if !(s.recovery_ms.is_finite() && s.recovery_ms >= 0.0) {
            return Err(format!("{path}: {label} has a bad recovery time"));
        }
        if s.quads != s.batches * s.batch_size || s.batches != doc.batches {
            return Err(format!("{path}: {label} quad accounting does not add up"));
        }
        if s.wal_bytes == 0 {
            return Err(format!("{path}: {label} recorded an empty WAL"));
        }
    }
    if !doc.results.iter().any(|s| s.resumed_from_snapshot) {
        return Err(format!("{path}: no configuration ever resumed from a state snapshot"));
    }
    println!(
        "{path}: ok — {} configurations, {} batches each{}",
        doc.results.len(),
        doc.batches,
        if doc.quick { " [quick]" } else { "" },
    );
    Ok(())
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_ingest.json".to_owned();
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => return usage("--out needs a path"),
            },
            "--check" => match it.next() {
                Some(v) => check = Some(v.clone()),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let r = match check {
        Some(path) => check_file(&path),
        None => run_suite(quick, &out),
    };
    match r {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> std::process::ExitCode {
    eprintln!("error: {msg}\nusage: ingestbench [--quick] [--out FILE] | ingestbench --check FILE");
    std::process::ExitCode::FAILURE
}
