//! Regenerates Table 3: time-filtered entity extrapolation of the full
//! model roster (5 static + 10 temporal baselines + HisRES) on the four
//! benchmark analogs, with the paper's numbers side by side and the
//! improvement-Δ row.
//!
//! Full run: `cargo run --release -p hisres-bench --bin table3`
//! (a few minutes with the default thread pool). Smoke run: append
//! `--quick`. Restrict datasets: `--datasets icews14s-syn,gdelt-syn`.
//! Thread count: `--jobs N` (default: available parallelism, capped at 8).

use hisres_bench::harness::{format_comparison, improvement_delta, run_table3_dataset_parallel, BenchSettings};
use hisres_bench::paper::{TABLE3, TABLE3_ANALOGS, TABLE3_DATASETS};

fn main() {
    let jobs: usize = std::env::args()
        .skip_while(|a| a != "--jobs")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4)
        });
    let selected: Vec<String> = std::env::args()
        .skip_while(|a| a != "--datasets")
        .nth(1)
        .map(|v| v.split(',').map(str::to_owned).collect())
        .unwrap_or_else(|| TABLE3_ANALOGS.iter().map(|s| s.to_string()).collect());

    println!("Table 3 — entity extrapolation, time-filtered metrics x100");
    {
        let s = BenchSettings::from_env();
        println!(
            "(paper columns `p*`: real datasets at d=200 on A800; measured `m*`: synthetic analogs at d={}, {} epochs)",
            s.dim, s.epochs
        );
    }
    println!();

    for (di, analog) in TABLE3_ANALOGS.iter().enumerate() {
        if !selected.iter().any(|s| s == analog) {
            continue;
        }
        eprintln!("running {analog} ...");
        let settings = BenchSettings::for_dataset(analog);
        let measured = run_table3_dataset_parallel(analog, &settings, jobs);
        let paper: Vec<(&str, Option<[f64; 4]>)> =
            TABLE3.iter().map(|r| (r.model, r.datasets[di])).collect();
        println!(
            "{}",
            format_comparison(
                &format!("{} (analog: {analog})", TABLE3_DATASETS[di]),
                &paper,
                &measured
            )
        );
        let d = improvement_delta(&measured);
        println!(
            "{:<22} | {:>35} | {:>6.2}% {:>6.2}% {:>6.2}% {:>6.2}%",
            "improvement Δ", "(HisRES vs best baseline)", d[0], d[1], d[2], d[3]
        );
        println!();
    }
}
