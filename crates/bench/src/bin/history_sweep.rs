//! Supplementary experiment: sensitivity of HisRES to the local history
//! length `l` at CPU-scale hyper-parameters.
//!
//! The paper grid-searches `l` per dataset (9/9/10/7 at d = 200 with
//! lr = 1e-3, §4.1.3). At the lr = 1e-2 this reproduction's small step
//! budget requires, longer windows deepen the BPTT chains and can
//! destabilise training — this sweep makes that trade-off visible
//! (test MRR and final-epoch training loss per window length), backing
//! the grid-search note in EXPERIMENTS.md.
//!
//! `cargo run --release -p hisres-bench --bin history_sweep`

use hisres::eval::{evaluate, Split};
use hisres::trainer::{train, HisResEval};
use hisres::HisRes;
use hisres_bench::harness::BenchSettings;
use hisres_data::datasets::load;

fn main() {
    let settings = BenchSettings::from_env();
    let data = load("icews14s-syn");
    println!("History-length sweep on icews14s-syn (HisRES, lr = {}, {} epochs)", settings.lr, settings.epochs);
    println!("(paper grid-searches l per dataset at lr = 1e-3; see EXPERIMENTS.md)");
    println!();
    println!("{:<4} {:>8} {:>8} {:>12} {:>12}", "l", "MRR", "H@1", "first loss", "final loss");
    for l in 1..=6usize {
        let mut cfg = settings.hisres_config();
        cfg.history_len = l;
        let model = HisRes::new(&cfg, data.num_entities(), data.num_relations());
        let report = train(&model, &data, &settings.train_config()).unwrap();
        let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
        println!(
            "{:<4} {:>8.2} {:>8.2} {:>12.3} {:>12.3}",
            l,
            r.mrr,
            r.hits[0],
            report.epoch_losses.first().copied().unwrap_or(f32::NAN),
            report.epoch_losses.last().copied().unwrap_or(f32::NAN)
        );
    }
    println!();
    println!("a rising final loss at larger l marks the BPTT-depth instability");
    println!("that made the paper's l = 9-10 settings untransferable at this lr.");
}
