//! Shared machinery for the table/figure binaries.

use hisres::trainer::HisResEval;
use hisres::{evaluate, EvalResult, HisRes, HisResConfig, Split, TrainConfig};
use hisres_baselines::registry::{all_baselines, RosterConfig};
use hisres_baselines::util::FitConfig;
use hisres_data::datasets::load;
use hisres_data::DatasetSplits;
use std::time::Instant;

/// Scale settings shared by every harness binary. `quick()` (env var
/// `HISRES_QUICK=1` or `--quick`) trims epochs for smoke runs.
#[derive(Clone, Copy, Debug)]
pub struct BenchSettings {
    /// Embedding width.
    pub dim: usize,
    /// History window for all temporal models.
    pub history_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate (scaled up from the paper's 1e-3 for the small step
    /// budget of CPU-scale runs).
    pub lr: f32,
    /// Seed for parameter init / training.
    pub seed: u64,
}

impl Default for BenchSettings {
    fn default() -> Self {
        Self { dim: 32, history_len: 3, epochs: 8, lr: 0.01, seed: 2024 }
    }
}

impl BenchSettings {
    /// Reduced-cost settings for smoke runs.
    pub fn quick() -> Self {
        Self { epochs: 2, ..Default::default() }
    }

    /// Resolves settings from the process arguments/environment.
    pub fn from_env() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("HISRES_QUICK").is_ok_and(|v| v == "1");
        if quick {
            Self::quick()
        } else {
            Self::default()
        }
    }

    /// Per-dataset settings. The paper grid-searches the history length
    /// per dataset (9/9/10/7 at d = 200 with lr = 1e-3, §4.1.3); we
    /// replicated that sweep at this scale and found that windows longer
    /// than 3 *destabilise* several recurrent models at the lr = 1e-2 the
    /// small step budget requires (losses oscillate through the deeper
    /// BPTT chains; see EXPERIMENTS.md, "grid-search note"). The stable
    /// uniform configuration is therefore used for every dataset — and,
    /// importantly, for every model alike.
    pub fn for_dataset(_name: &str) -> Self {
        Self::from_env()
    }

    /// The HisRES configuration at these settings.
    pub fn hisres_config(&self) -> HisResConfig {
        HisResConfig {
            dim: self.dim,
            conv_channels: (self.dim / 4).max(2),
            history_len: self.history_len,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// The training schedule at these settings.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            lr: self.lr,
            patience: 0,
            grad_clip: 1.0,
            verbose: false,
            seed: self.seed,
            guard: Default::default(),
        }
    }

    /// The baseline fit schedule at these settings.
    pub fn fit_config(&self) -> FitConfig {
        FitConfig { epochs: self.epochs, lr: self.lr, grad_clip: 1.0, seed: self.seed }
    }
}

/// One measured row: model name + the four metrics.
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Model name.
    pub model: String,
    /// `[MRR, H@1, H@3, H@10]` ×100.
    pub metrics: [f64; 4],
    /// Wall-clock seconds spent training + evaluating.
    pub seconds: f64,
}

impl From<(EvalResult, f64)> for MetricRow {
    fn from((r, seconds): (EvalResult, f64)) -> Self {
        MetricRow { model: r.model, metrics: [r.mrr, r.hits[0], r.hits[1], r.hits[2]], seconds }
    }
}

/// Trains HisRES with `cfg` on `data` and evaluates on test.
pub fn run_hisres(cfg: &HisResConfig, data: &DatasetSplits, s: &BenchSettings) -> MetricRow {
    let t0 = Instant::now();
    let model = HisRes::new(cfg, data.num_entities(), data.num_relations());
    hisres::train(&model, data, &s.train_config()).unwrap();
    let res = evaluate(&HisResEval { model: &model }, data, Split::Test);
    (res, t0.elapsed().as_secs_f64()).into()
}

/// Trains and evaluates the entire Table 3 roster (baselines + HisRES) on
/// one dataset, reporting progress on stderr.
pub fn run_table3_dataset(name: &str, s: &BenchSettings) -> Vec<MetricRow> {
    let data = load(name);
    let rc = RosterConfig { dim: s.dim, history_len: s.history_len, seed: s.seed };
    let mut rows = Vec::new();
    for mut baseline in all_baselines(data.num_entities(), data.num_relations(), &rc) {
        let t0 = Instant::now();
        baseline.fit(&data, &s.fit_config());
        let res = evaluate(&baseline, &data, Split::Test);
        eprintln!("  {name}: {} done ({:.1}s)", res.model, t0.elapsed().as_secs_f64());
        rows.push((res, t0.elapsed().as_secs_f64()).into());
    }
    let row = run_hisres(&s.hisres_config(), &data, s);
    eprintln!("  {name}: HisRES done ({:.1}s)", row.seconds);
    rows.push(row);
    rows
}

/// Like [`run_table3_dataset`], but trains the roster's models on
/// `workers` threads. Every model is built, trained and evaluated entirely
/// inside one thread (the autograd tape is thread-local), so results are
/// bit-identical to the sequential run regardless of thread count.
pub fn run_table3_dataset_parallel(name: &str, s: &BenchSettings, workers: usize) -> Vec<MetricRow> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let data = load(name);
    let rc = RosterConfig { dim: s.dim, history_len: s.history_len, seed: s.seed };
    let total = 16usize; // 15 baselines + HisRES
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, MetricRow)>> = Mutex::new(Vec::with_capacity(total));

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let t0 = Instant::now();
                let row: MetricRow = if i < 15 {
                    let mut baseline = all_baselines(data.num_entities(), data.num_relations(), &rc)
                        .swap_remove(i);
                    baseline.fit(&data, &s.fit_config());
                    let res = evaluate(&baseline, &data, Split::Test);
                    (res, t0.elapsed().as_secs_f64()).into()
                } else {
                    run_hisres(&s.hisres_config(), &data, s)
                };
                eprintln!("  {name}: {} done ({:.1}s)", row.model, row.seconds);
                results.lock().unwrap().push((i, row));
            });
        }
    });

    let mut rows = results.into_inner().unwrap();
    rows.sort_by_key(|(i, _)| *i);
    rows.into_iter().map(|(_, r)| r).collect()
}

/// Formats a paper-vs-measured block for one dataset.
pub fn format_comparison(
    title: &str,
    paper: &[(&str, Option<[f64; 4]>)],
    measured: &[MetricRow],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {title} ===\n"));
    out.push_str(&format!(
        "{:<22} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}\n",
        "Model", "pMRR", "pH@1", "pH@3", "pH@10", "mMRR", "mH@1", "mH@3", "mH@10"
    ));
    for (i, row) in measured.iter().enumerate() {
        let p = paper.get(i).and_then(|(_, m)| *m);
        let pstr = match p {
            Some(m) => format!("{:>7.2} {:>7.2} {:>7.2} {:>7.2}", m[0], m[1], m[2], m[3]),
            None => format!("{:>7} {:>7} {:>7} {:>7}", "-", "-", "-", "-"),
        };
        out.push_str(&format!(
            "{:<22} | {} | {:>7.2} {:>7.2} {:>7.2} {:>7.2}\n",
            row.model, pstr, row.metrics[0], row.metrics[1], row.metrics[2], row.metrics[3]
        ));
    }
    out
}

/// The paper's improvement-Δ row: HisRES vs the best non-HisRES model,
/// per metric, in percent.
pub fn improvement_delta(measured: &[MetricRow]) -> [f64; 4] {
    let hisres = measured.last().expect("HisRES row last");
    let mut best = [f64::NEG_INFINITY; 4];
    for row in &measured[..measured.len() - 1] {
        for (b, &m) in best.iter_mut().zip(&row.metrics) {
            *b = b.max(m);
        }
    }
    std::array::from_fn(|k| 100.0 * (hisres.metrics[k] - best[k]) / best[k].max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_settings_trim_epochs() {
        assert!(BenchSettings::quick().epochs < BenchSettings::default().epochs);
    }

    #[test]
    fn hisres_config_is_valid() {
        BenchSettings::default().hisres_config().validate().unwrap();
    }

    #[test]
    fn improvement_delta_compares_to_best_runner_up() {
        let rows = vec![
            MetricRow { model: "a".into(), metrics: [40.0, 30.0, 45.0, 60.0], seconds: 0.0 },
            MetricRow { model: "b".into(), metrics: [20.0, 35.0, 20.0, 20.0], seconds: 0.0 },
            MetricRow { model: "HisRES".into(), metrics: [44.0, 38.5, 49.5, 66.0], seconds: 0.0 },
        ];
        let d = improvement_delta(&rows);
        assert!((d[0] - 10.0).abs() < 1e-9);
        assert!((d[1] - 10.0).abs() < 1e-9);
        assert!((d[2] - 10.0).abs() < 1e-9);
        assert!((d[3] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn format_comparison_handles_missing_paper_rows() {
        let rows = vec![MetricRow { model: "RPC".into(), metrics: [1.0; 4], seconds: 0.0 }];
        let s = format_comparison("t", &[("RPC", None)], &rows);
        assert!(s.contains("RPC"));
        assert!(s.contains('-'));
    }
}
