#![warn(missing_docs)]

//! # hisres-bench
//!
//! The benchmark harness regenerating every table and figure of the HisRES
//! paper on the synthetic benchmark analogs:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 2 (dataset statistics) | `cargo run --release -p hisres-bench --bin table2` |
//! | Table 3 (main results, 16 models × 4 datasets) | `... --bin table3` |
//! | Table 4 (ablations) | `... --bin table4` |
//! | Figure 5(a) (granularity sweep) | `... --bin fig5a` |
//! | Figure 5(b) (GNN layer sweep) | `... --bin fig5b` |
//!
//! Each binary prints the paper's reported numbers next to the measured
//! ones. Absolute values are not comparable (the paper trains `d = 200`
//! models on the real ICEWS/GDELT datasets on A800 GPUs; we train small
//! models on synthetic analogs on CPU) — the claim under test is the
//! *shape*: who wins, which components matter, where the sweet spots lie.
//!
//! Criterion microbenches (`cargo bench -p hisres-bench`) cover the hot
//! operators, the three global aggregators (the Table 4 part-3 runtime
//! trade-off), and an end-to-end training step.

pub mod harness;
pub mod paper;

pub use harness::{BenchSettings, MetricRow};
