//! Reference numbers transcribed from the paper, for side-by-side
//! reporting. All values are time-filtered metrics ×100.

/// `[MRR, H@1, H@3, H@10]`.
pub type Metrics = [f64; 4];

/// Table 3: per-dataset results. `None` marks entries the paper leaves
/// blank ("-").
pub struct Table3Row {
    /// Model name as printed in Table 3.
    pub model: &'static str,
    /// ICEWS14s, ICEWS18, ICEWS05-15, GDELT.
    pub datasets: [Option<Metrics>; 4],
}

/// The paper's Table 3 (entity extrapolation, time-filtered).
pub const TABLE3: &[Table3Row] = &[
    Table3Row { model: "DistMult", datasets: [Some([15.44, 10.91, 17.24, 23.92]), Some([11.51, 7.03, 12.87, 20.86]), Some([17.95, 13.12, 20.71, 29.32]), Some([8.68, 5.58, 9.96, 17.13])] },
    Table3Row { model: "ComplEx", datasets: [Some([32.54, 23.43, 36.13, 50.73]), Some([22.94, 15.19, 27.05, 42.11]), Some([32.63, 24.01, 37.50, 52.81]), Some([16.96, 11.25, 19.52, 32.35])] },
    Table3Row { model: "ConvE", datasets: [Some([35.09, 25.23, 39.38, 54.68]), Some([24.51, 16.23, 29.25, 44.51]), Some([33.81, 24.78, 39.00, 54.95]), Some([16.55, 11.02, 18.88, 31.60])] },
    Table3Row { model: "ConvTransE", datasets: [Some([33.80, 25.40, 38.54, 53.99]), Some([22.11, 13.94, 26.44, 42.28]), Some([33.03, 24.15, 38.07, 54.32]), Some([16.20, 10.85, 18.38, 30.86])] },
    Table3Row { model: "RotatE", datasets: [Some([21.31, 10.26, 24.35, 44.75]), Some([12.78, 4.01, 14.89, 31.91]), Some([24.71, 13.22, 29.04, 48.16]), Some([13.45, 6.95, 14.09, 25.99])] },
    Table3Row { model: "RE-NET", datasets: [Some([36.93, 26.83, 39.51, 54.78]), Some([29.78, 19.73, 32.55, 48.46]), Some([43.67, 33.55, 48.83, 62.72]), Some([19.55, 12.38, 20.80, 34.00])] },
    Table3Row { model: "CyGNet", datasets: [Some([35.05, 25.73, 39.01, 53.55]), Some([27.12, 17.21, 30.97, 46.85]), Some([40.42, 29.44, 46.06, 61.60]), Some([20.22, 12.35, 21.66, 35.82])] },
    Table3Row { model: "xERTE", datasets: [Some([40.02, 32.06, 44.63, 56.17]), Some([29.31, 21.03, 33.51, 46.48]), Some([46.62, 37.84, 52.31, 63.92]), Some([19.45, 11.92, 20.84, 34.18])] },
    Table3Row { model: "RE-GCN", datasets: [Some([41.75, 31.57, 46.70, 61.45]), Some([32.62, 22.39, 36.79, 52.68]), Some([48.03, 37.33, 53.90, 68.51]), Some([19.69, 12.46, 20.93, 33.81])] },
    Table3Row { model: "CEN", datasets: [Some([43.34, 33.18, 48.49, 62.58]), Some([32.66, 22.55, 36.81, 52.50]), None, Some([21.16, 13.43, 22.71, 36.38])] },
    Table3Row { model: "TiRGN", datasets: [Some([44.61, 33.90, 50.20, 64.89]), Some([33.66, 23.19, 37.99, 54.22]), Some([50.04, 39.25, 56.13, 70.71]), Some([21.67, 13.63, 23.27, 37.60])] },
    Table3Row { model: "CENET", datasets: [Some([39.02, 29.62, 43.23, 57.49]), Some([27.85, 18.15, 31.63, 46.98]), Some([41.95, 32.17, 46.93, 60.43]), Some([20.23, 12.69, 21.70, 34.92])] },
    Table3Row { model: "RETIA", datasets: [Some([42.76, 32.28, 47.77, 62.75]), Some([32.43, 22.23, 36.48, 52.94]), Some([47.26, 36.64, 52.90, 67.76]), Some([20.12, 12.76, 21.45, 34.49])] },
    Table3Row { model: "RPC", datasets: [None, Some([34.91, 24.34, 38.74, 55.89]), Some([51.14, 39.47, 57.11, 71.75]), Some([22.41, 14.42, 24.36, 38.33])] },
    Table3Row { model: "LogCL", datasets: [Some([48.87, 37.76, 54.71, 70.26]), Some([35.67, 24.53, 40.32, 57.74]), Some([57.04, 46.07, 63.72, 77.87]), Some([23.75, 14.64, 25.60, 42.33])] },
    Table3Row { model: "HisRES", datasets: [Some([50.48, 39.57, 56.65, 71.09]), Some([37.69, 26.46, 42.75, 59.70]), Some([59.07, 48.62, 65.66, 78.48]), Some([26.58, 16.90, 29.07, 46.31])] },
];

/// Dataset display names for Table 3 column groups (paper order).
pub const TABLE3_DATASETS: [&str; 4] = ["ICEWS14s", "ICEWS18", "ICEWS05-15", "GDELT"];

/// The synthetic analog generated for each Table 3 dataset column.
pub const TABLE3_ANALOGS: [&str; 4] = ["icews14s-syn", "icews18-syn", "icews0515-syn", "gdelt-syn"];

/// Table 4: ablations on ICEWS14s and ICEWS18.
pub struct Table4Row {
    /// Variant name as printed in Table 4.
    pub variant: &'static str,
    /// ICEWS14s metrics.
    pub icews14s: Metrics,
    /// ICEWS18 metrics.
    pub icews18: Metrics,
}

/// The paper's Table 4.
pub const TABLE4: &[Table4Row] = &[
    Table4Row { variant: "HisRES", icews14s: [50.48, 39.57, 56.65, 71.09], icews18: [37.69, 26.46, 42.75, 59.70] },
    Table4Row { variant: "HisRES-w/o-G", icews14s: [45.48, 34.76, 50.94, 65.72], icews18: [29.16, 18.45, 33.17, 50.61] },
    Table4Row { variant: "HisRES-w/o-GH", icews14s: [41.83, 31.49, 47.01, 61.74], icews18: [31.55, 21.53, 35.41, 51.48] },
    Table4Row { variant: "HisRES-w/o-MG", icews14s: [49.67, 38.95, 55.55, 70.11], icews18: [36.31, 25.11, 41.09, 58.49] },
    Table4Row { variant: "HisRES-w/o-SG1", icews14s: [50.04, 39.34, 55.86, 70.28], icews18: [37.08, 25.76, 42.07, 59.39] },
    Table4Row { variant: "HisRES-w/o-SG2", icews14s: [50.10, 39.42, 56.24, 70.07], icews18: [36.99, 25.70, 41.95, 59.39] },
    Table4Row { variant: "HisRES-w/o-RU", icews14s: [50.17, 39.37, 56.17, 70.38], icews18: [36.99, 25.79, 41.79, 59.12] },
    Table4Row { variant: "HisRES-w/-CompGCN", icews14s: [48.75, 37.71, 54.70, 69.73], icews18: [36.37, 25.34, 41.06, 58.21] },
    Table4Row { variant: "HisRES-w/-RGAT", icews14s: [47.99, 36.95, 53.94, 69.18], icews18: [35.68, 24.58, 40.30, 57.72] },
];

/// The paper's Table 2 (dataset statistics), for reference printing.
pub struct Table2Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Entities, relations, train/valid/test facts, timestamps.
    pub stats: [usize; 6],
    /// Time granularity.
    pub granularity: &'static str,
}

/// The paper's Table 2.
pub const TABLE2: &[Table2Row] = &[
    Table2Row { dataset: "ICEWS14s", stats: [7128, 230, 74845, 8514, 7371, 365], granularity: "1 day" },
    Table2Row { dataset: "ICEWS18", stats: [23033, 256, 373018, 45995, 49545, 304], granularity: "1 day" },
    Table2Row { dataset: "ICEWS05-15", stats: [10488, 251, 368868, 46302, 46159, 4017], granularity: "1 day" },
    Table2Row { dataset: "GDELT", stats: [7691, 240, 1734399, 238765, 305241, 2976], granularity: "15 mins" },
];

/// Figure 5 qualitative reference: the paper reports (a) near-flat MRR
/// across granularity levels 1–5 with a maximum at 2, and (b) 2 GNN layers
/// beating 1 and 3 on ICEWS14s.
pub const FIG5A_BEST_GRANULARITY: usize = 2;
/// Best hidden-layer count in Figure 5(b).
pub const FIG5B_BEST_LAYERS: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_sixteen_rows_ending_with_hisres() {
        assert_eq!(TABLE3.len(), 16);
        assert_eq!(TABLE3.last().unwrap().model, "HisRES");
    }

    #[test]
    fn hisres_is_best_in_every_paper_column() {
        let hisres = TABLE3.last().unwrap();
        for (d, h) in hisres.datasets.iter().enumerate() {
            let h = h.unwrap();
            for row in &TABLE3[..15] {
                if let Some(m) = row.datasets[d] {
                    for k in 0..4 {
                        assert!(h[k] > m[k], "{} beats HisRES on dataset {d} metric {k}", row.model);
                    }
                }
            }
        }
    }

    #[test]
    fn table4_full_model_dominates_ablations() {
        let full = &TABLE4[0];
        for row in &TABLE4[1..] {
            assert!(full.icews14s[0] > row.icews14s[0], "{}", row.variant);
            assert!(full.icews18[0] > row.icews18[0], "{}", row.variant);
        }
    }

    #[test]
    fn blanks_match_the_paper() {
        let cen = TABLE3.iter().find(|r| r.model == "CEN").unwrap();
        assert!(cen.datasets[2].is_none(), "CEN has no ICEWS05-15 entry");
        let rpc = TABLE3.iter().find(|r| r.model == "RPC").unwrap();
        assert!(rpc.datasets[0].is_none(), "RPC has no ICEWS14s entry");
    }
}
