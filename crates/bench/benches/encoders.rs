//! Encoder-level benchmarks: the runtime cost of the three global
//! aggregators the paper compares in Table 4 part 3 (ConvGAT vs CompGCN
//! vs RGAT) on the same graph, plus one full evolutionary-encoder step.
//! This is the ablation bench for the "attention is worth its cost"
//! design choice called out in DESIGN.md.

use hisres_util::bench::{criterion_group, criterion_main, Criterion};
use hisres_graph::{EdgeList, Snapshot};
use hisres_nn::{CompGcnLayer, ConvGatLayer, GruCell, RgatLayer};
use hisres_tensor::{init, ParamStore, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::{Rng, SeedableRng};
use std::hint::black_box;

fn random_graph(rng: &mut StdRng, nodes: usize, edges: usize, rels: usize) -> EdgeList {
    let mut e = EdgeList::new();
    for _ in 0..edges {
        e.push(
            rng.gen_range(0..nodes as u32),
            rng.gen_range(0..rels as u32),
            rng.gen_range(0..nodes as u32),
        );
    }
    e
}

fn bench_encoders(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let (n, m, r2, d) = (200usize, 600usize, 40usize, 32usize);
    let graph = random_graph(&mut rng, n, m, r2);
    let ents = Tensor::constant(init::xavier_normal(n, d, &mut rng));
    let rels = Tensor::constant(init::xavier_normal(r2, d, &mut rng));

    let mut store = ParamStore::new();
    let convgat = ConvGatLayer::new(&mut store, "cg", d, 3, &mut rng);
    let compgcn = CompGcnLayer::new(&mut store, "cc", d, true, &mut rng);
    let rgat = RgatLayer::new(&mut store, "rg", d, &mut rng);

    c.bench_function("convgat_forward_600e", |b| {
        b.iter(|| convgat.forward(black_box(&ents), black_box(&rels), black_box(&graph)))
    });
    c.bench_function("compgcn_forward_600e", |b| {
        b.iter(|| compgcn.forward(black_box(&ents), black_box(&rels), black_box(&graph)))
    });
    c.bench_function("rgat_forward_600e", |b| {
        b.iter(|| rgat.forward(black_box(&ents), black_box(&rels), black_box(&graph)))
    });

    // one evolutionary step: aggregate a snapshot then evolve through GRU
    let gru = GruCell::new(&mut store, "gru", d, &mut rng);
    let snap = Snapshot {
        t: 0,
        triples: (0..300)
            .map(|_| {
                (
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0..(r2 / 2) as u32),
                    rng.gen_range(0..n as u32),
                )
            })
            .collect(),
    };
    let snap_edges = EdgeList::from_snapshot(&snap, r2 / 2);
    c.bench_function("evolution_step_300triples", |b| {
        b.iter(|| {
            let (agg, _r) = compgcn.forward(&ents, &rels, &snap_edges);
            gru.forward(&agg, &ents)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_encoders
}
criterion_main!(benches);
