//! End-to-end benchmarks: one HisRES training step (encode + joint loss +
//! backward + Adam) and one evaluation step (encode + score a query batch)
//! at icews14s-syn scale.

use hisres_util::bench::{criterion_group, criterion_main, Criterion};
use hisres::trainer::query_pairs;
use hisres::{HisRes, HisResConfig};
use hisres_graph::GlobalHistoryIndex;
use hisres_tensor::{clip_grad_norm, no_grad, Adam};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;

fn bench_end_to_end(c: &mut Criterion) {
    let data = hisres_data::datasets::load("icews14s-syn");
    let cfg = HisResConfig {
        dim: 32,
        conv_channels: 8,
        history_len: 3,
        ..Default::default()
    };
    let model = HisRes::new(&cfg, data.num_entities(), data.num_relations());
    let snaps = hisres_graph::snapshot::partition(&data.train);
    let nr = data.num_relations();

    // pick a mid-timeline step with full history
    let t = 50usize;
    let target = &snaps[t];
    assert!(!target.triples.is_empty());
    let history = &snaps[t - 3..t];
    let mut global = GlobalHistoryIndex::new();
    for s in &snaps[..t] {
        global.add_snapshot(s, nr);
    }
    let queries = query_pairs(&target.triples, nr);
    let g_edges = global.relevant_graph(&queries);

    let mut opt = Adam::new(model.store.params().cloned().collect(), 1e-3);
    let mut rng = StdRng::seed_from_u64(0);
    c.bench_function("hisres_train_step", |b| {
        b.iter(|| {
            opt.zero_grad();
            let loss = model.loss_at(history, target.t, &target.triples, &g_edges, &mut rng);
            loss.backward();
            clip_grad_norm(model.store.params(), 1.0);
            opt.step();
        })
    });

    c.bench_function("hisres_eval_step", |b| {
        b.iter(|| {
            no_grad(|| {
                let enc = model.encode(history, target.t as u32, &g_edges, false, &mut rng);
                model.score_objects(&enc, &queries, false, &mut rng).value_clone()
            })
        })
    });

    c.bench_function("global_graph_construction", |b| {
        b.iter(|| global.relevant_graph(&queries))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_end_to_end
}
criterion_main!(benches);
