//! Microbenchmarks of the tensor operators on the hot path of HisRES
//! training: matmul (entity transform), gather/scatter (message passing),
//! segment softmax (ConvGAT attention), 1-D convolution (decoders), and
//! the fused cross-entropy.

use hisres_util::bench::{criterion_group, criterion_main, Criterion};
use hisres_tensor::{NdArray, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::{Rng, SeedableRng};
use std::hint::black_box;

fn rand_nd(rng: &mut StdRng, r: usize, c: usize) -> NdArray {
    NdArray::from_vec((0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect(), &[r, c])
}

fn bench_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let n = 200;
    let d = 32;
    let m = 800; // edges

    let ents = rand_nd(&mut rng, n, d);
    let w = rand_nd(&mut rng, d, d);
    c.bench_function("matmul_200x32x32", |b| {
        b.iter(|| black_box(&ents).matmul(black_box(&w)))
    });

    let table = rand_nd(&mut rng, n, d);
    let idx: Vec<u32> = (0..m).map(|_| rng.gen_range(0..n as u32)).collect();
    c.bench_function("gather_800_rows", |b| {
        b.iter(|| black_box(&table).gather_rows(black_box(&idx)))
    });

    let msgs = rand_nd(&mut rng, m, d);
    c.bench_function("scatter_add_800_rows", |b| {
        b.iter(|| black_box(&msgs).scatter_add_rows(black_box(&idx), n))
    });

    let scores = Tensor::constant(rand_nd(&mut rng, m, 1));
    let segs = idx.clone();
    c.bench_function("segment_softmax_800_edges", |b| {
        b.iter(|| black_box(&scores).segment_softmax(black_box(&segs), n))
    });

    let batch = Tensor::constant(rand_nd(&mut rng, 64, 2 * d));
    let kernels = Tensor::constant(rand_nd(&mut rng, 8, 6));
    c.bench_function("conv1d_64x2x32_8ch", |b| {
        b.iter(|| black_box(&batch).conv1d_same(black_box(&kernels), 2, 3))
    });

    let logits = Tensor::param(rand_nd(&mut rng, 64, n));
    let targets: Vec<u32> = (0..64).map(|_| rng.gen_range(0..n as u32)).collect();
    c.bench_function("softmax_ce_64x200", |b| {
        b.iter(|| black_box(&logits).softmax_cross_entropy(black_box(&targets)))
    });

    // backward through a small MLP — the tape overhead itself
    let x = Tensor::param(rand_nd(&mut rng, 64, d));
    let w1 = Tensor::param(rand_nd(&mut rng, d, d));
    c.bench_function("forward_backward_mlp", |b| {
        b.iter(|| {
            let loss = x.matmul(&w1).tanh_act().sum_all();
            loss.backward();
            x.zero_grad();
            w1.zero_grad();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ops
}
criterion_main!(benches);
