//! Cross-crate call-graph tests over the two-crate `xcrate` fixture
//! workspace: manifest-driven crate naming, `use … as` renames, glob
//! imports, crate-root re-exports, conservative method dispatch, and
//! the resolved/ambiguous/unresolved/external classification — pinned
//! as exact edge sets.

use hisres_lint::callgraph::{build, crate_names, load_workspace, Graph};
use std::path::PathBuf;

fn xcrate() -> Graph {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/xcrate");
    let files = load_workspace(&root).expect("fixture workspace loads");
    build(&files, &crate_names(&root))
}

/// `(caller, callee, line)` triples, sorted, for exact comparison.
fn edge_set(g: &Graph) -> Vec<(String, String, u32)> {
    let mut v: Vec<_> = g
        .edges
        .iter()
        .enumerate()
        .flat_map(|(from, es)| {
            es.iter()
                .map(move |e| (from, e))
                .collect::<Vec<_>>()
        })
        .map(|(from, e)| (g.fns[from].key.clone(), g.fns[e.to].key.clone(), e.line))
        .collect();
    v.sort();
    v
}

#[test]
fn manifest_lib_names_win_over_package_names() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/xcrate");
    let names = crate_names(&root);
    // `alpha-pkg` has `[lib] name = "alpha"`; `beta-link` has only the
    // package name, with `-` mapped to `_`.
    assert_eq!(names.get("crates/alpha").map(String::as_str), Some("alpha"));
    assert_eq!(names.get("crates/beta").map(String::as_str), Some("beta_link"));
}

#[test]
fn cross_crate_edges_resolve_through_renames_globs_and_reexports() {
    let g = xcrate();
    assert_eq!(
        edge_set(&g),
        vec![
            // Intra-file free call inside alpha's `geom` module.
            ("alpha::geom::area".into(), "alpha::geom::scale".into(), 3),
            // `grid.cells()` — exactly one workspace candidate, not a
            // std method name, so it resolves.
            ("beta_link::cells_of".into(), "alpha::Grid::cells".into(), 25),
            // `g::area(..)` through `use alpha::geom as g`.
            ("beta_link::total".into(), "alpha::geom::area".into(), 18),
            // Bare `area(..)` through `use alpha::geom::*`.
            ("beta_link::total".into(), "alpha::geom::area".into(), 19),
            // `alpha::area(..)` through the crate-root `pub use`.
            ("beta_link::total".into(), "alpha::geom::area".into(), 20),
        ]
    );
}

#[test]
fn ambiguous_dispatch_is_counted_not_guessed() {
    let g = xcrate();
    // `resolve` has two receiver-taking candidates (Grid and Plan):
    // both calls are classified ambiguous and produce NO edge.
    assert_eq!(g.stats.ambiguous, 2);
    let dispatch = g.find_by_name("ambiguous_dispatch");
    assert_eq!(dispatch.len(), 1);
    assert!(g.edges[dispatch[0]].is_empty(), "no edges may be guessed");
}

#[test]
fn unresolved_workspace_paths_are_reported_std_is_external() {
    let g = xcrate();
    // `alpha::gone::forever()` points into the workspace but matches no
    // definition — reported, not dropped.
    assert_eq!(g.unresolved.len(), 1);
    let u = &g.unresolved[0];
    assert_eq!(u.path, "alpha::gone::forever");
    assert_eq!(g.fns[u.from].key, "beta_link::missing");
    assert_eq!((u.line, u.col), (33, 5));
    // `std::process::id()` is external, silent.
    assert_eq!(g.stats.external, 1);
}

#[test]
fn stats_account_for_every_call_event() {
    let g = xcrate();
    assert_eq!(g.stats.nodes, 10);
    assert_eq!(g.stats.edges, 5);
    assert_eq!(g.stats.unresolved, 1);
    assert_eq!(g.stats.ambiguous, 2);
    assert_eq!(g.stats.external, 1);
}

#[test]
fn find_by_name_locates_methods_across_crates() {
    let g = xcrate();
    let hits = g.find_by_name("resolve");
    let mut keys: Vec<_> = hits.iter().map(|&i| g.fns[i].key.clone()).collect();
    keys.sort();
    assert_eq!(keys, vec!["alpha::Grid::resolve", "beta_link::Plan::resolve"]);
}
