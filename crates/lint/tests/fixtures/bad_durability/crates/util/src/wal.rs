// Fixture: acknowledges a write that was never fsynced — the reply on
// line 7 races the page cache; a crash after the ack loses the record.
use std::io::Write;

pub fn append(f: &mut std::fs::File, rec: &[u8]) -> std::io::Result<()> {
    f.write_all(rec)?;
    reply(rec.len());
    Ok(())
}

fn reply(_n: usize) {}
