// Fixture: writes the temp file but never renames it into place, so
// the "atomic replace" is a torn copy waiting to happen.
use std::io::Write;

pub fn atomic_write(dir: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp_path = dir.join("snapshot.tmp");
    let mut f = std::fs::File::create(&tmp_path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}
