// Fixture: not a hot-path file by name — `grow` is only a finding
// because `fastpath::forward_nograd` reaches it.
pub fn grow(n: usize) -> Vec<f32> {
    vec![1.0f32; n]
}

pub fn cold_setup(n: usize) -> Vec<f32> {
    vec![0.0f32; n]
}
