// Fixture: the allocation hides one hop below the hot entry point.
// `forward_nograd` itself allocates nothing; the chain
// forward_nograd → scratch::grow → vec! is only visible to the graph.
use crate::scratch;

pub fn forward_nograd(xs: &[f32], out: &mut [f32]) {
    let scale = scratch::grow(xs.len());
    for (o, x) in out.iter_mut().zip(xs) {
        *o = *x * scale[0];
    }
}
