// Fixture crate `beta_link`: exercises every cross-crate resolution
// path — `use … as` rename, glob import, crate-root re-export, unique
// vs. ambiguous method dispatch, a workspace path that resolves to
// nothing (unresolved, reported), and a std call (external, silent).
use alpha::geom as g;
use alpha::geom::*;
use alpha::Grid;

pub struct Plan;

impl Plan {
    pub fn resolve(&self) -> u32 {
        9
    }
}

pub fn total(w: u32, h: u32) -> u32 {
    let a = g::area(w, h);
    let b = area(h, w);
    let c = alpha::area(w, h);
    a + b + c
}

pub fn cells_of(grid: &Grid) -> u32 {
    grid.cells()
}

pub fn ambiguous_dispatch(grid: &Grid, plan: &Plan) -> u32 {
    grid.resolve() + plan.resolve()
}

pub fn missing() -> u32 {
    alpha::gone::forever()
}

pub fn outside() -> u32 {
    std::process::id()
}
