// Fixture crate `alpha`: a file module, a crate-root re-export, and two
// inherent methods (one unique workspace-wide, one shared with `beta`).
pub mod geom;
pub use geom::area;

pub struct Grid {
    pub w: u32,
}

impl Grid {
    pub fn cells(&self) -> u32 {
        self.w
    }

    pub fn resolve(&self) -> u32 {
        self.w + 1
    }
}
