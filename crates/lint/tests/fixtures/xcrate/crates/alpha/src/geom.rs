// Fixture module with an intra-file free-fn edge (area → scale).
pub fn area(w: u32, h: u32) -> u32 {
    scale(w) * h
}

fn scale(w: u32) -> u32 {
    w * 2
}
