// Fixture: every construct here is a grep false-positive or a properly
// suppressed use — the lint must report NOTHING for this tree.

/// Doc comment mentioning `.unwrap()` and `fs::write` must not fire.
pub fn docs_and_strings() -> String {
    // A line comment with .unwrap() and panic!("x") must not fire.
    /* A block comment, /* nested */, with .expect("x") must not fire. */
    let a = "calling .unwrap() in a string";
    let b = r#"raw string with ".unwrap()" and fs::write"#;
    let c = r##"outer fence: r#".expect("inner")"# still one string"##;
    let quote: char = '"';
    let escaped = '\'';
    let backslash = '\\';
    format!("{a}{b}{c}{quote}{escaped}{backslash}")
}

/// Lifetimes must not be confused with char literals.
pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    x
}

/// A justified suppression: silenced, and counted as suppressed.
pub fn justified(input: Option<u32>) -> u32 {
    input.unwrap() // lint:allow(panic-reachability): fixture proves a reasoned allow is honoured
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        assert!(1.0 == 1.0);
    }
}
