// Fixture: construction-time allocation in a hot-alloc-scoped file, with a
// reasoned allow — the rule fires, is silenced, and counts as suppressed.
pub fn warmup_buffer(n: usize) -> Vec<f32> {
    vec![0.0f32; n] // lint:allow(no-hot-alloc-reachable): warmup-only construction, not the per-call path
}
