// Fixture: one float-eq violation (line 3).
pub fn is_half(x: f32) -> bool {
    x == 0.5
}
