// Fixture: one atomic-writes-only violation (line 3).
pub fn export(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
