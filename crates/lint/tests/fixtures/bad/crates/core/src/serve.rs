// Fixture: one panic-reachability violation (line 4) and one malformed
// suppression (line 7). Everything else here must stay silent.
pub fn handle(input: Option<u32>) -> u32 {
    let v = input.unwrap();
    // A suppression without a reason is itself an error:
    let w = match input {
        None => panic!("no input"), // lint:allow(panic-reachability)
        Some(w) => w,
    };
    v + w
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
