// Fixture: panic-free-zone now covers the distributed coordinator/worker
// path crates/core/src/dist.rs (line 4).
pub fn supervise(input: Option<u32>) -> u32 {
    let v = input.unwrap();
    v + 1
}
