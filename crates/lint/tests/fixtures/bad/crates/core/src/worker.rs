// Fixture: one pool-only-threading violation (line 3).
pub fn fan_out() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
