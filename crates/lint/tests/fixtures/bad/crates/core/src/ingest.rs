// Fixture: one panic-free-zone violation (line 4) inside the durable
// ingest scope. Everything else here must stay silent.
pub fn apply(seq: Option<u64>) -> u64 {
    let s = seq.unwrap();
    s + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::apply(Some(1)), 2);
    }
}
