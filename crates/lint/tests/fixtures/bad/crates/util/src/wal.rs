// Fixture: one panic-free-zone violation (line 4); the fs::write on
// line 6 must stay SILENT — wal.rs is excluded from atomic-writes-only.
pub fn append(buf: Option<&[u8]>) -> usize {
    let b = buf.expect("buffer present");
    let n = b.len();
    let _ = std::fs::write("frames.wal", b);
    n
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
