// Fixture: three no-hot-alloc-reachable violations (lines 3, 4, 5).
pub fn forward_hot(n: usize, xs: &[f32]) -> Vec<f32> {
    let mut buf = vec![0.0f32; n];
    let copy = xs.to_vec();
    let mut spare: Vec<f32> = Vec::with_capacity(4);
    spare.extend_from_slice(&copy);
    buf.extend_from_slice(&spare);
    buf
}
