// Fixture: one no-debug-leftovers violation (line 3).
pub fn forward(x: f32) -> f32 {
    eprintln!("forward got {x}");
    x * 2.0
}
