// Fixture: panic-free-zone now covers crates/comms/src/ (line 4) and the
// workspace-wide atomic-writes-only rule catches a bare write (line 5).
pub fn decode(input: Option<u32>, path: &std::path::Path) -> std::io::Result<u32> {
    let v = input.unwrap();
    std::fs::write(path, v.to_le_bytes())?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
