// Fixture: two determinism violations — a clock read (line 4) and a
// hash-ordered collection (line 5).
pub fn profile_step() -> u128 {
    let t0 = std::time::Instant::now();
    let mut seen: std::collections::HashMap<u32, u32> = Default::default();
    seen.insert(1, 2);
    t0.elapsed().as_nanos()
}
