// Fixture: not a panic-zone file itself — `pick` only becomes a finding
// because `core::serve::handle` reaches it. The index has no guard
// vocabulary anywhere in the body, so it is an unguarded-slice sink.
pub fn pick(q: usize, table: &[u32]) -> u32 {
    table[q]
}

pub fn unreached(table: &[u32]) -> u32 {
    table[7]
}
