// Fixture: the panic sink lives two crates away — the serving entry
// point is clean at token level and only the call graph can see the
// unguarded index it reaches through `graph::cmp::pick`.
use graph::cmp;

pub fn handle(q: u32, table: &[u32]) -> u32 {
    let shifted = local::widen(q);
    cmp::pick(shifted, table)
}

mod local {
    pub fn widen(q: u32) -> usize {
        q as usize
    }
}
