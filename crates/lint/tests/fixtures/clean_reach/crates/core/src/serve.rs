// Fixture: same shape as bad_reach, but the edge into `graph::cmp` is
// suppressed with a reason AT THE CALL SITE — the sink file itself is
// untouched, proving a per-edge allow cuts the whole subtree.
use graph::cmp;

pub fn handle(q: u32, table: &[u32]) -> u32 {
    cmp::pick(q as usize, table) // lint:allow(panic-reachability): q is validated at the session boundary
}
