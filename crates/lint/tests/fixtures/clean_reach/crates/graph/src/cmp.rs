// Fixture: carries the unguarded index; must stay diagnostic-free
// because the only path reaching it is suppressed at the caller.
pub fn pick(q: usize, table: &[u32]) -> u32 {
    table[q]
}
