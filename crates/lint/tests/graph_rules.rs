//! Graph-rule tests over dedicated fixture trees: each rule has a tree
//! where the violation is invisible at token level and only the call
//! graph can pin it, with exact `file:line:col` positions and the full
//! entry-to-sink chain asserted.

use hisres_lint::diag::{Diagnostic, Severity};
use hisres_lint::{run, Options, Report};
use std::path::PathBuf;

fn lint(name: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    run(&root, &Options { deny_all: true }).expect("fixture tree lints")
}

fn only_diag(r: &Report) -> &Diagnostic {
    assert_eq!(r.diagnostics.len(), 1, "exactly one diagnostic: {:?}", keys(r));
    &r.diagnostics[0]
}

fn keys(r: &Report) -> Vec<(String, String, u32, u32)> {
    let mut v: Vec<_> = r
        .diagnostics
        .iter()
        .map(|d| (d.rule.to_string(), d.file.clone(), d.line, d.col))
        .collect();
    v.sort();
    v
}

#[test]
fn panic_reachability_crosses_crates_and_reports_the_chain() {
    let report = lint("bad_reach");
    let d = only_diag(&report);
    assert_eq!(d.rule, "panic-reachability");
    assert_eq!(d.severity, Severity::Error);
    // The sink is pinned in the NON-zone file the entry point reaches.
    assert_eq!((d.file.as_str(), d.line, d.col), ("crates/graph/src/cmp.rs", 5, 10));
    assert_eq!(d.snippet, "table[q]");
    assert_eq!(
        d.chain,
        vec![
            "core::serve::handle".to_string(),
            "graph::cmp::pick".to_string(),
            "slice-index-without-guard".to_string(),
        ]
    );
    // `unreached` has the same unguarded index but no path from an
    // entry point — reachability, not file scoping, decides.
    assert!(report.has_errors());
}

#[test]
fn per_edge_allow_cuts_the_whole_subtree() {
    let report = lint("clean_reach");
    assert_eq!(keys(&report), vec![], "suppressed at the call site");
    // The rule DID fire and was silenced by the reasoned allow on the
    // edge — the sink file itself carries no annotation.
    assert_eq!(report.suppressed, 1);
    assert!(!report.has_errors());
}

#[test]
fn hot_alloc_reachability_follows_the_call_graph() {
    let report = lint("bad_hot");
    let d = only_diag(&report);
    assert_eq!(d.rule, "no-hot-alloc-reachable");
    // The vec! lives in scratch.rs — not a hot-path file by name.
    assert_eq!((d.file.as_str(), d.line, d.col), ("crates/nn/src/scratch.rs", 4, 5));
    assert_eq!(
        d.chain,
        vec![
            "nn::fastpath::forward_nograd".to_string(),
            "nn::scratch::grow".to_string(),
            "vec!".to_string(),
        ]
    );
    // `cold_setup` allocates identically but is unreachable from the
    // hot entry set: exactly one diagnostic proves it stayed silent.
}

#[test]
fn durability_order_pins_ack_before_sync_and_missing_rename() {
    let report = lint("bad_durability");
    assert_eq!(
        keys(&report),
        vec![
            ("durability-order".into(), "crates/util/src/fsio.rs".into(), 8, 7),
            ("durability-order".into(), "crates/util/src/wal.rs".into(), 7, 5),
        ]
    );
    let rename = report
        .diagnostics
        .iter()
        .find(|d| d.file.ends_with("fsio.rs"))
        .unwrap();
    assert!(
        rename.message.contains("never reaches fs::rename"),
        "{}",
        rename.message
    );
    assert_eq!(
        rename.chain,
        vec![
            "util::fsio::atomic_write".to_string(),
            "write_all@8".to_string(),
            "∅ rename".to_string(),
        ]
    );
    let ack = report
        .diagnostics
        .iter()
        .find(|d| d.file.ends_with("wal.rs"))
        .unwrap();
    assert!(
        ack.message.contains("before the write at line 6 is fsynced"),
        "{}",
        ack.message
    );
    assert_eq!(
        ack.chain,
        vec![
            "util::wal::append".to_string(),
            "write_all@6".to_string(),
            "reply@7".to_string(),
        ]
    );
}

#[test]
fn graph_stats_and_timings_reach_the_report() {
    let report = lint("bad_reach");
    assert_eq!(report.graph.nodes, 4);
    assert_eq!(report.graph.edges, 2);
    // Every graph rule (and the shared parse+callgraph pass) reports a
    // wall-clock entry.
    for key in ["parse+callgraph", "panic-reachability", "no-hot-alloc-reachable", "durability-order"]
    {
        assert!(
            report.timings.contains_key(key),
            "missing timing for {key}: {:?}",
            report.timings.keys().collect::<Vec<_>>()
        );
    }
}
