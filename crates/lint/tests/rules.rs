//! Fixture-based rule tests: run the whole engine over the `bad/` and
//! `clean/` trees under `tests/fixtures/` and pin the exact `file:line`
//! diagnostics, suppression accounting and JSON report schema.

use hisres_lint::diag::Severity;
use hisres_lint::{check_report, run, Options, Report};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str, deny_all: bool) -> Report {
    run(&fixture(name), &Options { deny_all }).expect("fixture tree lints")
}

/// `(rule, file, line)` triples, sorted, for easy comparison.
fn keys(r: &Report) -> Vec<(String, String, u32)> {
    let mut v: Vec<_> = r
        .diagnostics
        .iter()
        .map(|d| (d.rule.to_string(), d.file.clone(), d.line))
        .collect();
    v.sort();
    v
}

#[test]
fn bad_tree_reports_one_violation_per_rule_with_exact_positions() {
    let report = lint("bad", false);
    assert_eq!(
        keys(&report),
        vec![
            ("atomic-writes-only".into(), "crates/comms/src/frame.rs".into(), 5),
            ("atomic-writes-only".into(), "crates/data/src/export.rs".into(), 3),
            ("determinism".into(), "crates/tensor/src/timing.rs".into(), 4),
            ("determinism".into(), "crates/tensor/src/timing.rs".into(), 5),
            ("float-eq".into(), "crates/graph/src/cmp.rs".into(), 3),
            ("lint-allow-syntax".into(), "crates/core/src/serve.rs".into(), 7),
            ("no-debug-leftovers".into(), "crates/nn/src/debug.rs".into(), 3),
            ("no-hot-alloc-reachable".into(), "crates/nn/src/fastpath.rs".into(), 3),
            ("no-hot-alloc-reachable".into(), "crates/nn/src/fastpath.rs".into(), 4),
            ("no-hot-alloc-reachable".into(), "crates/nn/src/fastpath.rs".into(), 5),
            ("panic-reachability".into(), "crates/comms/src/frame.rs".into(), 4),
            ("panic-reachability".into(), "crates/core/src/dist.rs".into(), 4),
            ("panic-reachability".into(), "crates/core/src/ingest.rs".into(), 4),
            ("panic-reachability".into(), "crates/core/src/serve.rs".into(), 4),
            ("panic-reachability".into(), "crates/util/src/wal.rs".into(), 4),
            ("pool-only-threading".into(), "crates/core/src/worker.rs".into(), 3),
        ]
    );
    // Severity: the debug-leftover is a warning by default, the rest errors.
    for d in &report.diagnostics {
        let expect = if d.rule == "no-debug-leftovers" {
            Severity::Warning
        } else {
            Severity::Error
        };
        assert_eq!(d.severity, expect, "severity of {}", d.rule);
    }
    assert!(report.has_errors());
}

#[test]
fn deny_all_escalates_warnings() {
    let report = lint("bad", true);
    assert!(report.diagnostics.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn diagnostics_carry_snippets_and_columns() {
    let report = lint("bad", false);
    let unwrap = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "panic-reachability" && d.file == "crates/core/src/serve.rs")
        .expect("panic-reachability diagnostic");
    assert_eq!(unwrap.snippet, "let v = input.unwrap();");
    assert!(unwrap.col > 0);
    let spawn = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "pool-only-threading")
        .expect("pool-only-threading diagnostic");
    assert!(spawn.snippet.contains("thread::spawn"));
}

#[test]
fn clean_tree_is_silent_and_counts_the_reasoned_allow() {
    let report = lint("clean", true);
    assert_eq!(
        keys(&report),
        Vec::<(String, String, u32)>::new(),
        "clean fixture must produce no diagnostics"
    );
    // The justified `.unwrap()` and the warmup `vec![…]` were suppressed,
    // not missed: both rules fired and the reasoned allows silenced them.
    assert_eq!(report.suppressed, 2);
    assert!(!report.has_errors());
}

#[test]
fn reasonless_allow_is_reported_not_honoured() {
    let report = lint("bad", false);
    let syntax = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "lint-allow-syntax")
        .expect("lint-allow-syntax diagnostic");
    assert!(syntax.message.contains("must carry a reason"), "{}", syntax.message);
    // And the reasonless allow did NOT hide the panic! underneath it —
    // it surfaced as lint-allow-syntax at the same location instead.
    assert_eq!(syntax.line, 7);
}

#[test]
fn json_report_round_trips_through_the_schema_checker() {
    for (name, deny) in [("bad", false), ("bad", true), ("clean", true)] {
        let text = lint(name, deny).to_json().to_json_string();
        check_report(&text).unwrap_or_else(|e| panic!("{name} report schema: {e}"));
    }
}

#[test]
fn schema_checker_rejects_malformed_reports() {
    assert!(check_report("not json at all").is_err());
    assert!(check_report(r#"{"schema":"something-else/v9"}"#).is_err());
    // The previous schema generation is rejected by tag, not silently read.
    assert!(check_report(r#"{"schema":"hisres-lint/v1"}"#).is_err());
    // Right schema tag but missing required fields.
    assert!(check_report(r#"{"schema":"hisres-lint/v2"}"#).is_err());
    // v2 requires graph stats and per-rule kind/time_ms.
    let no_graph = r#"{"schema":"hisres-lint/v2","root":".","files_scanned":1,
        "suppressed":0,"elapsed_ms":1.0,
        "rules":[{"id":"x","severity":"error","kind":"token","description":"d","time_ms":0.1}],
        "diagnostics":[]}"#;
    assert!(check_report(no_graph).unwrap_err().contains("graph"));
    let bad_kind = r#"{"schema":"hisres-lint/v2","root":".","files_scanned":1,
        "suppressed":0,"elapsed_ms":1.0,
        "graph":{"nodes":0,"edges":0,"unresolved":0,"ambiguous":0,"external":0},
        "rules":[{"id":"x","severity":"error","kind":"regex","description":"d","time_ms":0.1}],
        "diagnostics":[]}"#;
    assert!(check_report(bad_kind).unwrap_err().contains("token|graph"));
    // A diagnostic with a wrong-typed line.
    let bad = r#"{"schema":"hisres-lint/v2","root":".","files_scanned":1,
        "suppressed":0,"elapsed_ms":1.0,
        "graph":{"nodes":0,"edges":0,"unresolved":0,"ambiguous":0,"external":0},
        "rules":[{"id":"x","severity":"error","kind":"token","description":"d","time_ms":0.1}],
        "diagnostics":[{"rule":"x","severity":"error","file":"f.rs",
        "line":"three","col":1,"message":"m","snippet":"s"}]}"#;
    assert!(check_report(bad).is_err());
}

#[test]
fn workspace_root_discovery_finds_the_repo() {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = hisres_lint::find_workspace_root(&here).expect("workspace root");
    assert!(root.join("scripts/verify.sh").exists());
}
