//! Adversarial parser fixtures: every construct that once confused the
//! token-level linter (the `>>` shift/close ambiguity above all) is
//! pinned here against the AST the parser must produce.

use hisres_lint::lexer::lex;
use hisres_lint::parser::{parse, Ast, EventKind, FnDef};

fn parse_src(src: &str) -> Ast {
    let tokens = lex(src).expect("fixture lexes");
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_code())
        .map(|(i, _)| i)
        .collect();
    parse(&tokens, &code)
}

fn only_fn<'a>(ast: &'a Ast, name: &str) -> &'a FnDef {
    let hits: Vec<_> = ast.fns.iter().filter(|f| f.name == name).collect();
    assert_eq!(hits.len(), 1, "exactly one fn named {name}");
    hits[0]
}

fn calls(f: &FnDef) -> Vec<String> {
    f.events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Call(segs) => Some(segs.join("::")),
            _ => None,
        })
        .collect()
}

#[test]
fn nested_generics_shift_ambiguity() {
    // `Vec<Vec<f32>>` ends with a `>>` token the lexer emits as one
    // shift; the parser must count it as two closing angles and still
    // find the function and its body events.
    let ast = parse_src(
        r#"
pub fn transpose(rows: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let mut out: Vec<Vec<f32>> = make();
    out
}
"#,
    );
    assert!(ast.notes.is_empty(), "no parse notes: {:?}", ast.notes);
    let f = only_fn(&ast, "transpose");
    assert_eq!(calls(f), vec!["make"]);
}

#[test]
fn shift_operator_is_not_a_generic_close() {
    // Real right-shifts in expression position must not unbalance the
    // angle tracking that nested generics rely on.
    let ast = parse_src(
        r#"
pub fn mix(seed: u64) -> u64 {
    let x = seed >> 33;
    let y: Vec<Vec<u64>> = split(x >> 1);
    y.len() as u64 ^ x
}
"#,
    );
    assert!(ast.notes.is_empty(), "no parse notes: {:?}", ast.notes);
    let f = only_fn(&ast, "mix");
    assert_eq!(calls(f), vec!["split"]);
}

#[test]
fn fn_trait_bounds_with_result_return() {
    // `F: Fn() -> Result<(), E>` in a where-clause: the arrow and the
    // generic Result must not be mistaken for the fn's own signature.
    let ast = parse_src(
        r#"
pub fn retry<F, E>(times: usize, op: F) -> Result<(), E>
where
    F: Fn() -> Result<(), E>,
{
    for _ in 0..times {
        op()?;
    }
    finish()
}
"#,
    );
    assert!(ast.notes.is_empty(), "no parse notes: {:?}", ast.notes);
    let f = only_fn(&ast, "retry");
    assert_eq!(calls(f), vec!["op", "finish"]);
    assert!(
        f.events.iter().any(|e| e.kind == EventKind::Try),
        "the `?` inside the loop is a Try event"
    );
}

#[test]
fn turbofish_segments_are_stripped() {
    // `collect::<Vec<Vec<u8>>>()` and `Foo::<T>::new()` keep their path
    // segments but drop the generic arguments.
    let ast = parse_src(
        r#"
pub fn gather(xs: &[u8]) -> Vec<Vec<u8>> {
    let grouped = xs.iter().map(|b| vec![*b]).collect::<Vec<Vec<u8>>>();
    let built = Builder::<Vec<u8>>::new();
    consume(built);
    grouped
}
"#,
    );
    assert!(ast.notes.is_empty(), "no parse notes: {:?}", ast.notes);
    let f = only_fn(&ast, "gather");
    assert_eq!(calls(f), vec!["Builder::new", "consume"]);
    assert!(
        f.events
            .iter()
            .any(|e| e.kind == EventKind::Method("collect".into())),
        "turbofish method call still recorded as a method event"
    );
}

#[test]
fn labeled_breaks_are_not_lifetimes_or_chars() {
    let ast = parse_src(
        r#"
pub fn drain<'a>(grid: &'a [Vec<u8>]) -> usize {
    let mut n = 0;
    'outer: for row in grid {
        for b in row {
            if *b == 0 {
                break 'outer;
            }
            n += step(n);
        }
    }
    n
}
"#,
    );
    assert!(ast.notes.is_empty(), "no parse notes: {:?}", ast.notes);
    let f = only_fn(&ast, "drain");
    assert_eq!(calls(f), vec!["step"]);
}

#[test]
fn impl_trait_arguments_and_returns() {
    let ast = parse_src(
        r#"
pub fn pipeline(src: impl Iterator<Item = Vec<Vec<f32>>>) -> impl Fn() -> usize {
    let staged = stage(src);
    move || staged
}
"#,
    );
    assert!(ast.notes.is_empty(), "no parse notes: {:?}", ast.notes);
    let f = only_fn(&ast, "pipeline");
    assert_eq!(calls(f), vec!["stage"]);
}

#[test]
fn index_guard_classification() {
    let ast = parse_src(
        r#"
pub fn bare(v: &[u32], i: usize) -> u32 {
    v[i]
}

pub fn literal(header: &[u8]) -> u8 {
    header[3]
}

pub fn scoped(v: &[u32], i: usize) -> u32 {
    if i < v.len() {
        v[i]
    } else {
        0
    }
}
"#,
    );
    let idx = |name: &str| -> Vec<bool> {
        only_fn(&ast, name)
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Index)
            .map(|e| e.guarded)
            .collect()
    };
    // A bare `v[i]` with no bounds vocabulary anywhere is unguarded …
    assert_eq!(idx("bare"), vec![false]);
    assert!(!only_fn(&ast, "bare").bounds_aware);
    // … a constant index is total by inspection …
    assert_eq!(idx("literal"), vec![true]);
    // … and an index under an `i < v.len()` check is guarded, with the
    // whole body marked bounds-aware.
    assert_eq!(idx("scoped"), vec![true]);
    assert!(only_fn(&ast, "scoped").bounds_aware);
}

#[test]
fn cfg_test_functions_are_marked() {
    let ast = parse_src(
        r#"
pub fn shipped() {}

#[cfg(test)]
mod tests {
    #[test]
    fn exercised() {
        super::shipped();
    }
}
"#,
    );
    assert!(!only_fn(&ast, "shipped").is_test);
    assert!(only_fn(&ast, "exercised").is_test);
}

#[test]
fn use_groups_renames_and_globs_flatten() {
    let ast = parse_src(
        r#"
pub use crate::geom::{area, scale as resize};
use std::collections::BTreeMap;
use crate::kernels::*;
"#,
    );
    let mut decls: Vec<(String, String, bool, bool)> = ast
        .uses
        .iter()
        .map(|u| (u.path.join("::"), u.alias.clone(), u.glob, u.is_pub))
        .collect();
    decls.sort();
    assert_eq!(
        decls,
        vec![
            ("crate::geom::area".into(), "area".into(), false, true),
            ("crate::geom::scale".into(), "resize".into(), false, true),
            ("crate::kernels".into(), String::new(), true, false),
            ("std::collections::BTreeMap".into(), "BTreeMap".into(), false, false),
        ]
    );
}

#[test]
fn unclosed_delimiter_degrades_to_a_note_not_a_crash() {
    let ast = parse_src("pub fn broken(v: Vec<Vec<u8>) -> usize {\n    v.len()\n");
    assert!(
        !ast.notes.is_empty(),
        "an unbalanced file must surface a parse note"
    );
}
