//! Adversarial token cases for the from-scratch lexer — each one is a
//! construct that defeats line-oriented `grep` and must lex correctly
//! for the rule engine to be trustworthy.

use hisres_lint::lexer::{lex, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .expect("fixture must lex")
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

/// Code tokens only (what the rules see).
fn code(src: &str) -> Vec<String> {
    lex(src)
        .expect("fixture must lex")
        .into_iter()
        .filter(|t| t.is_code())
        .map(|t| t.text)
        .collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let toks = kinds("/* outer /* inner /* deep */ */ still outer */ x");
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].0, TokKind::BlockComment);
    assert!(toks[0].1.contains("deep"));
    assert_eq!(toks[1], (TokKind::Ident, "x".into()));
}

#[test]
fn unterminated_block_comment_is_an_error() {
    let err = lex("ok /* nested /* closed */ but outer is not").unwrap_err();
    assert!(err.message.contains("block comment"), "{err}");
    assert_eq!((err.line, err.col), (1, 4));
}

#[test]
fn unwrap_inside_raw_string_is_not_code() {
    // The classic grep false-positive: a raw string *containing* the
    // banned method text. Two hashes, and the inner `"#` must not end it.
    let src = r####"let msg = r##"don't call ".unwrap()" or "# panic!()"##;"####;
    let toks = kinds(src);
    let raw = toks
        .iter()
        .find(|(k, _)| *k == TokKind::RawStr)
        .expect("raw string token");
    assert!(raw.1.contains(".unwrap()"));
    assert!(raw.1.contains("panic!"));
    // No identifier token named `unwrap` or `panic` leaked out.
    assert!(!toks
        .iter()
        .any(|(k, t)| *k == TokKind::Ident && (t == "unwrap" || t == "panic")));
}

#[test]
fn raw_byte_string_and_bare_r_identifier() {
    let toks = kinds(r###"let r = br#"bytes ".expect(" here"#;"###);
    // `r` alone is an identifier, `br#"…"#` is one raw string.
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r"));
    let raw = toks.iter().find(|(k, _)| *k == TokKind::RawStr).expect("raw byte string");
    assert!(raw.1.starts_with("br#"));
    assert!(raw.1.contains(".expect("));
}

#[test]
fn double_quote_char_literal_does_not_open_a_string() {
    // `'"'` — if the lexer misreads this as starting a string, the rest
    // of the file lexes as garbage and `fs::write` hides inside it.
    let toks = code("let q = '\"'; fs::write(p, b)");
    assert!(toks.contains(&"'\"'".to_string()));
    assert!(toks.contains(&"fs".to_string()));
    assert!(toks.contains(&"write".to_string()));
}

#[test]
fn escaped_quote_and_backslash_char_literals() {
    let toks = kinds(r"let a = '\''; let b = '\\'; let c = '\u{1F980}';");
    let chars: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::CharLit)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(chars, vec![r"'\''", r"'\\'", r"'\u{1F980}'"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = kinds("fn f<'a>(x: &'a str, s: &'static str) -> &'a str { x }");
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Lifetime)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static", "'a"]);
    assert!(!toks.iter().any(|(k, _)| *k == TokKind::CharLit));
}

#[test]
fn single_letter_char_literal_is_not_a_lifetime() {
    let toks = kinds("let c = 'x';");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t == "'x'"));
}

#[test]
fn byte_literals_and_byte_strings() {
    let toks = kinds(r#"let a = b'x'; let b = b"bytes";"#);
    assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t == "b'x'"));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "b\"bytes\""));
}

#[test]
fn float_classification() {
    let float = |s: &str| {
        let toks = lex(s).expect("lex");
        toks.iter().find(|t| t.kind == TokKind::Num).expect("num").is_float()
    };
    assert!(float("1.0"));
    assert!(float("0.5f32"));
    assert!(float("1e-3"));
    assert!(float("2E5"));
    assert!(float("3f64"));
    assert!(!float("42"));
    assert!(!float("42u64"));
    assert!(!float("0xE0")); // hex E is not an exponent
    assert!(!float("0b101"));
}

#[test]
fn ranges_and_tuple_fields_are_not_floats() {
    // `0..n` is two ints and a `..`; `pair.0` is ident `.` int.
    let toks = code("for i in 0..n { pair.0 += 1 }");
    assert!(toks.contains(&"..".to_string()));
    assert!(toks.contains(&"0".to_string()));
    let lexed = lex("for i in 0..n { pair.0 += 1 }").expect("lex");
    assert!(lexed.iter().filter(|t| t.kind == TokKind::Num).all(|t| !t.is_float()));
    // But `1.` genuinely is a float.
    let lexed = lex("let x = 1.;").expect("lex");
    assert!(lexed.iter().any(|t| t.kind == TokKind::Num && t.is_float()));
}

#[test]
fn multichar_operators_group_longest_first() {
    let toks = code("a == b != c; p::q; r..=s; t <<= 2;");
    for op in ["==", "!=", "::", "..=", "<<="] {
        assert!(toks.contains(&op.to_string()), "missing {op}");
    }
    // `==` never splits into two `=`.
    assert!(!toks.windows(2).any(|w| w[0] == "=" && w[1] == "="));
}

#[test]
fn line_and_col_are_exact() {
    let src = "let a = 1;\n  let bb = 2.5;";
    let toks = lex(src).expect("lex");
    let bb = toks.iter().find(|t| t.text == "bb").expect("bb");
    assert_eq!((bb.line, bb.col), (2, 7));
    let lit = toks.iter().find(|t| t.text == "2.5").expect("2.5");
    assert_eq!((lit.line, lit.col), (2, 12));
}

#[test]
fn multiline_string_advances_line_numbers() {
    let src = "let s = \"line\nbreak\";\nlet after = 1;";
    let toks = lex(src).expect("lex");
    let after = toks.iter().find(|t| t.text == "after").expect("after");
    assert_eq!(after.line, 3);
}

#[test]
fn comments_keep_positions_and_kinds() {
    let src = "// top\nlet x = 1; /* mid */ let y = 2;\n/// doc\nfn f() {}";
    let toks = lex(src).expect("lex");
    assert_eq!(toks[0].kind, TokKind::LineComment);
    assert_eq!(toks[0].line, 1);
    let mid = toks.iter().find(|t| t.kind == TokKind::BlockComment).expect("mid");
    assert_eq!(mid.line, 2);
    let doc = toks.iter().filter(|t| t.kind == TokKind::LineComment).nth(1).expect("doc");
    assert!(doc.text.contains("doc"));
    assert_eq!(doc.line, 3);
}
