//! Workspace call graph built on top of [`crate::parser`].
//!
//! Every `.rs` file is mapped to a (crate, module-path) location from
//! its path plus the workspace's `Cargo.toml` manifests, each parsed
//! [`crate::parser::FnDef`] becomes a node, and each call event becomes
//! either an **edge** (resolved to a workspace function), an
//! **ambiguous** method call (more than one workspace method shares the
//! name — trait dispatch is not modelled, so we refuse to guess), an
//! **external** call (`std`/`core`/`alloc` or a non-workspace crate), or
//! an **unresolved** call (looked like a workspace path but no target
//! was found). Nothing is silently dropped: all four buckets are counted
//! in [`Stats`] and the unresolved ones carry their call sites for
//! reporting.
//!
//! Resolution is deliberately conservative and purely syntactic:
//!
//! * path calls (`foo()`, `a::b::foo()`, `Type::method()`) are resolved
//!   through the file's `use` map (including renames and glob imports
//!   into workspace crates), `crate::`/`self::`/`super::` prefixes,
//!   workspace lib names, and one level of crate-root re-exports
//!   (`pub use` in `lib.rs`);
//! * method calls (`recv.m(..)`) are resolved only when **exactly one**
//!   workspace function named `m` takes a receiver; with several
//!   candidates the call is classified ambiguous rather than fanned out
//!   to all of them, keeping reachability sets honest.

use crate::parser::{Ast, Event, EventKind, FnDef, UseDecl};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// One parsed source file, path relative to the analysis root.
pub struct ParsedFile {
    pub rel: String,
    pub ast: Ast,
}

/// One function node in the graph.
pub struct FnNode {
    /// Display path, e.g. `hisres::serve::Server::handle_line`.
    pub key: String,
    pub crate_name: String,
    /// Module path inside the crate (file modules + inline modules).
    pub module: Vec<String>,
    pub file: String,
    pub def: FnDef,
}

/// A resolved call edge.
#[derive(Clone)]
pub struct Edge {
    pub to: usize,
    /// Call-site position inside the caller's file.
    pub line: u32,
    pub col: u32,
}

/// A call that pointed into the workspace but found no target.
pub struct UnresolvedCall {
    pub from: usize,
    pub path: String,
    pub line: u32,
    pub col: u32,
}

/// Graph-wide resolution counters, surfaced in the v2 JSON report.
#[derive(Default, Clone, Copy)]
pub struct Stats {
    pub nodes: usize,
    pub edges: usize,
    /// Workspace-looking paths with no matching definition.
    pub unresolved: usize,
    /// Method names with >1 receiver-taking workspace candidate.
    pub ambiguous: usize,
    /// Calls into `std`/`core`/`alloc` or non-workspace crates.
    pub external: usize,
}

/// The workspace call graph.
pub struct Graph {
    pub fns: Vec<FnNode>,
    /// Outgoing edges per node index (same length as `fns`).
    pub edges: Vec<Vec<Edge>>,
    pub unresolved: Vec<UnresolvedCall>,
    pub stats: Stats,
}

impl Graph {
    /// Finds node indices by bare function name (all candidates).
    pub fn find_by_name(&self, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| n.def.name == name)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Scans the tree under `root` for `Cargo.toml` manifests, returning
/// crate-dir (relative, `/`-separated) → lib/bin crate name with `-`
/// mapped to `_`. Fixture trees without manifests fall back to the
/// directory name in [`build`].
pub fn crate_names(root: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name == "Cargo.toml" {
                if let Ok(text) = fs::read_to_string(&path) {
                    if let Some(pkg) = manifest_name(&text) {
                        let rel = path
                            .parent()
                            .and_then(|p| p.strip_prefix(root).ok())
                            .map(|p| {
                                p.components()
                                    .map(|c| c.as_os_str().to_string_lossy())
                                    .collect::<Vec<_>>()
                                    .join("/")
                            })
                            .unwrap_or_default();
                        out.insert(rel, pkg);
                    }
                }
            }
        }
    }
    out
}

/// Extracts the crate name from a manifest: `[lib] name` wins over
/// `[package] name` (the lib name is what `use` paths spell). Minimal
/// line-oriented TOML reading — the workspace guard already enforces
/// that manifests stay simple.
fn manifest_name(text: &str) -> Option<String> {
    let mut section = "";
    let mut pkg = None;
    let mut lib = None;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line;
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(eq) = rest.strip_prefix('=') {
                let val = eq.trim().trim_matches('"').to_string();
                match section {
                    "[package]" => pkg = Some(val),
                    "[lib]" => lib = Some(val),
                    _ => {}
                }
            }
        }
    }
    lib.or(pkg).map(|n| n.replace('-', "_"))
}

/// Where a file lives: its crate, in-crate module path, and whether the
/// whole file is test code (integration-test trees).
struct FileLoc {
    crate_name: String,
    module: Vec<String>,
    is_test: bool,
}

/// Maps a relative file path to its crate/module location.
///
/// `crates/x/src/lib.rs` is the root of crate `x`; `src/a/b.rs` is
/// module `a::b`; `src/main.rs` (when a `lib.rs` exists) and
/// `src/bin/*.rs` are their own binary crates; `tests/*.rs` under a
/// crate dir are integration-test crates with every fn marked test.
fn locate(
    rel: &str,
    crates: &BTreeMap<String, String>,
    has_lib: &BTreeMap<String, bool>,
) -> FileLoc {
    let parts: Vec<&str> = rel.split('/').collect();
    // Find the `src` or `tests` component splitting crate dir from file.
    let split = parts
        .iter()
        .position(|p| *p == "src" || *p == "tests")
        .unwrap_or(0);
    let crate_dir = parts[..split].join("/");
    let base = crates
        .get(&crate_dir)
        .cloned()
        .unwrap_or_else(|| {
            // Fixture fallback: last path component of the crate dir.
            parts
                .get(split.saturating_sub(1))
                .map(|s| s.replace('-', "_"))
                .unwrap_or_else(|| "root".into())
        });
    let kind = parts.get(split).copied().unwrap_or("src");
    let rest: Vec<&str> = parts[split + 1..].to_vec();
    if kind == "tests" {
        let stem = rest
            .last()
            .map(|f| f.trim_end_matches(".rs"))
            .unwrap_or("t");
        return FileLoc {
            crate_name: format!("{base}::tests::{stem}"),
            module: Vec::new(),
            is_test: true,
        };
    }
    // src tree
    let file = rest.last().copied().unwrap_or("lib.rs");
    let stem = file.trim_end_matches(".rs");
    let dirs: Vec<String> = rest[..rest.len().saturating_sub(1)]
        .iter()
        .map(|s| s.to_string())
        .collect();
    if dirs.first().map(String::as_str) == Some("bin") {
        return FileLoc {
            crate_name: format!("{base}::bin::{stem}"),
            module: Vec::new(),
            is_test: false,
        };
    }
    if stem == "main" && dirs.is_empty() {
        if *has_lib.get(&crate_dir).unwrap_or(&false) {
            // Bin alongside a lib: its own crate; `use <lib>::..` paths
            // resolve cross-crate into the lib as usual.
            return FileLoc {
                crate_name: format!("{base}::main"),
                module: Vec::new(),
                is_test: false,
            };
        }
        return FileLoc { crate_name: base, module: Vec::new(), is_test: false };
    }
    let mut module = dirs;
    if stem != "lib" && stem != "mod" && stem != "main" {
        module.push(stem.to_string());
    }
    FileLoc { crate_name: base, module, is_test: false }
}

/// Builds the call graph from parsed files. `crates` maps crate dirs to
/// lib names (see [`crate_names`]); fixture trees may pass an empty map.
pub fn build(files: &[ParsedFile], crates: &BTreeMap<String, String>) -> Graph {
    // Which crate dirs have a lib.rs (disambiguates main.rs roots).
    let mut has_lib: BTreeMap<String, bool> = BTreeMap::new();
    for f in files {
        if let Some(dir) = f.rel.strip_suffix("/src/lib.rs") {
            has_lib.insert(dir.to_string(), true);
        }
    }
    let workspace_crates: std::collections::BTreeSet<String> =
        crates.values().cloned().collect();
    // Also count fixture fallback crate names as workspace-internal.
    let mut internal: std::collections::BTreeSet<String> = workspace_crates.clone();

    // ---- Pass 1: nodes + per-file context ------------------------------
    let mut fns: Vec<FnNode> = Vec::new();
    struct FileCtx<'a> {
        uses: &'a [UseDecl],
        rel: &'a str,
    }
    let mut file_ctxs: Vec<FileCtx<'_>> = Vec::new();
    // (crate, path-with-::, kind) → node indices. Free fns are keyed
    // `crate::mods::name`; methods additionally `crate::mods::Type::name`.
    let mut path_index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    // Receiver-taking fns by bare name (for `.m()` resolution).
    let mut method_index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    // Crate-root re-exports: crate → alias → absolute path segments.
    let mut reexports: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();

    for f in files {
        let loc = locate(&f.rel, crates, &has_lib);
        internal.insert(loc.crate_name.clone());
        if loc.module.is_empty() {
            // Crate root: record `pub use` re-exports for one-level
            // lookup retries (`hisres::TopK` → `hisres::topk::TopK`).
            let map = reexports.entry(loc.crate_name.clone()).or_default();
            for u in f.ast.uses.iter().filter(|u| u.is_pub && !u.glob) {
                let mut abs = u.path.clone();
                if abs.first().map(String::as_str) == Some("crate")
                    || abs.first().map(String::as_str) == Some("self")
                {
                    abs.remove(0);
                }
                map.insert(u.alias.clone(), abs);
            }
        }
        for def in &f.ast.fns {
            let mut module = loc.module.clone();
            module.extend(def.module.iter().cloned());
            let mut key = String::new();
            key.push_str(&loc.crate_name);
            for m in &module {
                key.push_str("::");
                key.push_str(m);
            }
            if let Some(ty) = &def.self_ty {
                key.push_str("::");
                key.push_str(ty);
            }
            key.push_str("::");
            key.push_str(&def.name);
            let idx = fns.len();
            let mut def = def.clone();
            def.is_test |= loc.is_test;
            if def.has_receiver {
                method_index.entry(def.name.clone()).or_default().push(idx);
            }
            // Free-fn path (methods are also reachable as Type::name).
            let mut free_key = format!("{}::{}", loc.crate_name, module.join("::"))
                .trim_end_matches("::")
                .trim_end_matches(':')
                .to_string();
            if module.is_empty() {
                free_key = loc.crate_name.clone();
            }
            match &def.self_ty {
                None => {
                    path_index
                        .entry(format!("{free_key}::{}", def.name))
                        .or_default()
                        .push(idx);
                }
                Some(ty) => {
                    path_index
                        .entry(format!("{free_key}::{ty}::{}", def.name))
                        .or_default()
                        .push(idx);
                }
            }
            fns.push(FnNode {
                key,
                crate_name: loc.crate_name.clone(),
                module,
                file: f.rel.clone(),
                def,
            });
        }
        file_ctxs.push(FileCtx { uses: &f.ast.uses, rel: &f.rel });
    }

    // ---- Pass 2: edges -------------------------------------------------
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    let mut unresolved: Vec<UnresolvedCall> = Vec::new();
    let mut stats = Stats { nodes: fns.len(), ..Stats::default() };

    // Node indices grouped per file for caller lookup.
    let mut nodes_by_file: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in fns.iter().enumerate() {
        nodes_by_file.entry(n.file.as_str()).or_default().push(i);
    }

    for (fi, _f) in files.iter().enumerate() {
        let ctx = &file_ctxs[fi];
        let Some(node_ids) = nodes_by_file.get(ctx.rel) else { continue };
        // Use map: alias → absolute-ish path segments.
        let mut use_map: BTreeMap<&str, &UseDecl> = BTreeMap::new();
        let mut globs: Vec<&UseDecl> = Vec::new();
        for u in ctx.uses {
            if u.glob {
                globs.push(u);
            } else {
                use_map.insert(u.alias.as_str(), u);
            }
        }
        // Parser flattens fns per file in source order; events belong to
        // the node parsed from the same FnDef. Match by (name, line).
        for &ni in node_ids {
            let caller_module = fns[ni].module.clone();
            let caller_crate = fns[ni].crate_name.clone();
            // Clone events to end the borrow of fns[ni] during edge adds.
            let events: Vec<Event> = fns[ni].def.events.clone();
            for ev in &events {
                match &ev.kind {
                    EventKind::Call(segs) => {
                        resolve_call(
                            segs,
                            &caller_crate,
                            &caller_module,
                            &use_map,
                            &globs,
                            &internal,
                            &path_index,
                            &reexports,
                            ni,
                            ev,
                            &mut edges,
                            &mut unresolved,
                            &mut stats,
                        );
                    }
                    EventKind::Method(name) => {
                        if STD_METHODS.contains(&name.as_str()) {
                            // Could be a std type's method — refuse to
                            // guess even with one workspace candidate.
                            if method_index.contains_key(name.as_str()) {
                                stats.ambiguous += 1;
                            } else {
                                stats.external += 1;
                            }
                            continue;
                        }
                        match method_index.get(name.as_str()).map(Vec::as_slice) {
                            Some([one]) => {
                                edges[ni].push(Edge { to: *one, line: ev.line, col: ev.col });
                                stats.edges += 1;
                            }
                            Some(_) => stats.ambiguous += 1,
                            None => stats.external += 1,
                        }
                    }
                    // Macros, indexing and `?` are rule sinks, not edges.
                    _ => {}
                }
            }
        }
    }

    Graph { fns, edges, unresolved, stats }
}

/// Names the std-distribution crates whose calls are classified external
/// without further lookup.
fn is_std(seg: &str) -> bool {
    matches!(seg, "std" | "core" | "alloc" | "proc_macro")
}

/// Method names that std's own types answer (Option/Result/Vec/slice/
/// str/Iterator/float/io/sync surfaces). A `.m(..)` with one of these
/// names is never resolved to a workspace method even when exactly one
/// exists — `opt.map(..)` must not become an edge to `NdArray::map`.
/// Workspace methods that shadow a std name stay conservatively
/// ambiguous, exactly like trait dispatch.
const STD_METHODS: &[&str] = &[
    // Option / Result
    "map", "and_then", "or_else", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "ok", "err", "ok_or", "ok_or_else", "take",
    "replace", "filter", "is_some", "is_none", "is_ok", "is_err",
    "map_err", "as_deref", "as_deref_mut", "cloned", "copied", "flatten",
    "get_or_insert_with", "zip", "transpose",
    // collections / slices / strings
    "len", "is_empty", "push", "pop", "insert", "remove", "clear", "get",
    "get_mut", "contains", "contains_key", "iter", "iter_mut",
    "into_iter", "keys", "values", "values_mut", "entry", "or_insert",
    "or_insert_with", "or_default", "extend", "drain", "retain",
    "truncate", "resize", "reserve", "split_off", "append", "first",
    "last", "split_at", "split_at_mut", "chunks", "chunks_exact",
    "chunks_mut", "windows", "swap", "fill", "sort", "sort_by",
    "sort_by_key", "sort_unstable", "sort_unstable_by", "binary_search",
    "binary_search_by", "copy_from_slice", "clone_from_slice", "concat",
    "join", "to_vec", "as_slice", "as_mut_slice", "as_bytes", "as_str",
    "as_ref", "as_mut", "as_ptr", "as_mut_ptr", "starts_with",
    "ends_with", "trim", "trim_start", "trim_end", "split",
    "split_whitespace", "splitn", "lines", "chars", "bytes", "find",
    "rfind", "to_string", "to_owned", "to_lowercase", "to_uppercase",
    "parse", "push_str", "repeat", "strip_prefix", "strip_suffix",
    "char_indices", "make_ascii_lowercase", "swap_remove", "dedup",
    "rotate_left", "rotate_right", "to_le_bytes", "to_be_bytes",
    "leading_zeros", "trailing_zeros", "count_ones", "rem_euclid",
    // Iterator
    "next", "count", "sum", "product", "fold", "collect", "enumerate",
    "skip", "step_by", "rev", "chain", "peekable", "peek", "all", "any",
    "position", "min_by", "max_by", "min_by_key", "max_by_key",
    "filter_map", "flat_map", "by_ref", "take_while", "skip_while",
    "partition", "unzip", "last_mut", "nth", "cycle", "inspect",
    // numerics
    "min", "max", "abs", "sqrt", "powi", "powf", "exp", "ln", "log2",
    "floor", "ceil", "round", "to_bits", "from_bits", "is_nan",
    "is_finite", "is_infinite", "clamp", "signum", "recip", "hypot",
    "mul_add", "checked_add", "checked_sub", "checked_mul", "checked_div",
    "saturating_add", "saturating_sub", "saturating_mul", "wrapping_add",
    "wrapping_sub", "wrapping_mul", "partial_cmp", "cmp", "eq", "ne",
    "hash", "total_cmp",
    // io / fs / net / time / sync / fmt
    "read", "read_exact", "read_to_string", "read_to_end", "read_line",
    "write", "write_all", "write_fmt", "flush", "seek", "rewind",
    "set_len", "sync_all", "sync_data", "metadata", "set_nonblocking",
    "set_nodelay", "set_read_timeout", "set_write_timeout", "shutdown",
    "local_addr", "peer_addr", "accept", "incoming", "connect",
    "try_clone", "elapsed", "duration_since", "checked_duration_since",
    "as_secs", "as_secs_f64", "as_millis", "as_micros", "as_nanos",
    "lock", "try_lock", "send", "recv", "try_recv", "recv_timeout",
    "join_handle", "is_finished", "notify_one", "notify_all", "wait",
    "wait_timeout", "load", "store", "fetch_add", "fetch_sub",
    "compare_exchange", "fmt", "clone", "default", "drop", "finish",
    "set", "get_ref", "get_mut_ref", "into_inner", "update",
    // ops-trait / raw-pointer method names (`ptr.add(n)`, `Wrapping::mul`)
    "add", "sub", "mul", "div", "neg", "offset", "wrapping_offset",
    "to_str", "display", "exists", "is_dir", "is_file", "file_name",
    "file_stem", "extension", "with_extension", "with_file_name",
    "components", "strip_prefix_path", "canonicalize", "read_dir",
    "path", "file_type", "set_extension", "borrow", "borrow_mut",
    "try_into", "into", "from",
];

#[allow(clippy::too_many_arguments)]
fn resolve_call(
    segs: &[String],
    caller_crate: &str,
    caller_module: &[String],
    use_map: &BTreeMap<&str, &UseDecl>,
    globs: &[&UseDecl],
    internal: &std::collections::BTreeSet<String>,
    path_index: &BTreeMap<String, Vec<usize>>,
    reexports: &BTreeMap<String, BTreeMap<String, Vec<String>>>,
    from: usize,
    ev: &Event,
    edges: &mut [Vec<Edge>],
    unresolved: &mut Vec<UnresolvedCall>,
    stats: &mut Stats,
) {
    // Expand the leading segment to an absolute `[crate, …]` path.
    let mut candidates: Vec<Vec<String>> = Vec::new();
    let first = segs[0].as_str();
    let absolutize = |path: &[String], rest: &[String]| -> Vec<String> {
        let mut abs: Vec<String> = Vec::new();
        match path.first().map(String::as_str) {
            Some("crate") => {
                abs.push(caller_crate.to_string());
                abs.extend(path[1..].iter().cloned());
            }
            Some("self") => {
                abs.push(caller_crate.to_string());
                abs.extend(caller_module.iter().cloned());
                abs.extend(path[1..].iter().cloned());
            }
            Some("super") => {
                abs.push(caller_crate.to_string());
                let up = caller_module.len().saturating_sub(1);
                abs.extend(caller_module[..up].iter().cloned());
                abs.extend(path[1..].iter().cloned());
            }
            _ => abs.extend(path.iter().cloned()),
        }
        abs.extend(rest.iter().cloned());
        abs
    };
    match first {
        "crate" | "self" | "super" => candidates.push(absolutize(segs, &[])),
        // A workspace crate named like a std crate (fixture trees use
        // `crates/core`) shadows std, same as rustc's extern prelude.
        _ if is_std(first) && !internal.contains(first) => {
            stats.external += 1;
            return;
        }
        _ => {
            if let Some(u) = use_map.get(first) {
                // Imported name: substitute the use path, then
                // absolutize ITS leading crate/self/super.
                candidates.push(absolutize(&u.path, &segs[1..]));
            }
            if internal.contains(first) {
                // Spelled-out workspace crate path.
                candidates.push(segs.to_vec());
            }
            // In-module reference (`helper()`, `LocalType::new()`).
            let mut local: Vec<String> = vec![caller_crate.to_string()];
            local.extend(caller_module.iter().cloned());
            local.extend(segs.iter().cloned());
            candidates.push(local);
            // Crate-root reference for items pulled in by glob imports
            // of our own crate root, plus each glob prefix.
            for g in globs {
                let mut p = absolutize(&g.path, &[]);
                p.extend(segs.iter().cloned());
                candidates.push(p);
            }
        }
    }
    // Try every candidate against the fn index.
    for cand in &candidates {
        let head = cand.first().map(String::as_str).unwrap_or("");
        if !internal.contains(head) {
            if is_std(head) {
                stats.external += 1;
                return;
            }
            continue;
        }
        if let Some(to) = lookup(cand, path_index, reexports) {
            edges[from].push(Edge { to, line: ev.line, col: ev.col });
            stats.edges += 1;
            return;
        }
    }
    // Classify the miss. Unresolved (reported) iff the call explicitly
    // pointed into the workspace: a `crate::`/`self::`/`super::` path
    // with more than one segment, a spelled-out workspace crate, or a
    // multi-segment path through a `use` of a workspace crate. Bare
    // names that match nothing are overwhelmingly std prelude items
    // (`Some`, `Ok`, `String::from`) — classified external.
    let via_use = use_map
        .get(first)
        .map(|u| {
            let head = match u.path.first().map(String::as_str) {
                Some("crate" | "self" | "super") => caller_crate,
                Some(h) => h,
                None => "",
            };
            internal.contains(head)
        })
        .unwrap_or(false);
    let explicit = segs.len() > 1
        && (matches!(first, "crate" | "self" | "super")
            || internal.contains(first)
            || via_use);
    // `Value::Obj(..)` — a CamelCase final segment is an enum-variant or
    // tuple-struct constructor, not a missing function.
    let constructor_like = segs
        .last()
        .and_then(|s| s.chars().next())
        .map(|c| c.is_ascii_uppercase())
        .unwrap_or(false);
    if (explicit || (segs.len() == 1 && via_use)) && !constructor_like {
        unresolved.push(UnresolvedCall {
            from,
            path: segs.join("::"),
            line: ev.line,
            col: ev.col,
        });
        stats.unresolved += 1;
    } else {
        stats.external += 1;
    }
}

/// Looks one absolute path up in the fn index, trying free-fn and
/// `Type::method` shapes, then one level of crate-root re-export.
fn lookup(
    abs: &[String],
    path_index: &BTreeMap<String, Vec<usize>>,
    reexports: &BTreeMap<String, BTreeMap<String, Vec<String>>>,
) -> Option<usize> {
    let joined = abs.join("::");
    if let Some(hits) = path_index.get(&joined) {
        if let [one] = hits.as_slice() {
            return Some(*one);
        }
        // cfg-duplicated definitions (unix/non-unix): same path, same
        // semantics for reachability — take the first deterministically.
        return hits.first().copied();
    }
    // Re-export retry: `cratename::Alias::rest…` where the crate root
    // `pub use`s Alias from a submodule.
    if abs.len() >= 2 {
        if let Some(map) = reexports.get(&abs[0]) {
            if let Some(target) = map.get(&abs[1]) {
                let mut re: Vec<String> = vec![abs[0].clone()];
                re.extend(target.iter().cloned());
                re.extend(abs[2..].iter().cloned());
                let joined = re.join("::");
                if let Some(hits) = path_index.get(&joined) {
                    return hits.first().copied();
                }
            }
        }
    }
    None
}

/// Convenience used by tests and the engine: lex + parse every `.rs`
/// file under `root` (same skip rules as [`crate::collect_rs_files`])
/// into [`ParsedFile`]s. Files that fail to lex are skipped here — the
/// token-rule pass already reports them as `lex-error`.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<ParsedFile>> {
    let mut out = Vec::new();
    for path in crate::collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        let Ok(tokens) = crate::lexer::lex(&source) else { continue };
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_code())
            .map(|(i, _)| i)
            .collect();
        let ast = crate::parser::parse(&tokens, &code);
        out.push(ParsedFile { rel, ast });
    }
    Ok(out)
}
