//! A recursive-descent parser over the [`crate::lexer`] token stream,
//! producing the lightweight AST the call-graph and reachability rules
//! need: items (modules, impls, traits, `use` declarations) and function
//! bodies reduced to an ordered **event list** (calls, method calls,
//! macro uses, index expressions, `?` operators) with enough context
//! (test scope, guard scope, closure/unsafe nesting is flattened into
//! the owning function) to drive whole-program analysis.
//!
//! This is deliberately not a full Rust grammar. What it does handle is
//! every construct the real workspace uses:
//!
//! * nested generics with the `>>` ambiguity resolved parser-side (the
//!   lexer emits `>>` as one shift token; angle-depth tracking counts it
//!   as two closing brackets), including turbofish (`foo::<Vec<u8>>()`),
//!   `Fn() -> Result<(), E>` bounds, and `impl Trait` arguments;
//! * where-clauses, lifetimes, labeled breaks, raw strings (already one
//!   token from the lexer), attributes and `#[cfg(test)]` gating;
//! * `impl Type`, `impl Trait for Type`, trait blocks with default
//!   methods, inline and file modules.
//!
//! The parser is *tolerant*: unknown constructs are skipped token by
//! token instead of aborting, so a future syntax addition degrades to
//! weaker analysis, never to a hard failure. Anything that parses
//! suspiciously (an unclosed delimiter at EOF) is surfaced as a
//! [`ParseNote`] which the engine reports as a `parse-error` diagnostic.

use crate::lexer::{TokKind, Token};

/// Identifier-like tokens appearing in an `if`/`while`/`for` header (or
/// inside the index brackets themselves) that mark a slice index as
/// bounds-guarded. Conservative: `v[i]` inside `if i < v.len() { … }`,
/// `for i in 0..xs.len()`, or `&buf[..n.min(buf.len())]` does not count
/// as a panic sink; a bare `v[i]` does.
const GUARD_HINTS: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "get_mut",
    "min",
    "contains_key",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "partition_point",
    "checked_sub",
];

/// One `use` declaration, flattened: groups (`use a::{b, c as d}`) are
/// expanded into one `UseDecl` per leaf.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Full path segments, e.g. `["hisres_util", "json", "Value"]`.
    pub path: Vec<String>,
    /// The name this import binds locally (last segment or `as` rename).
    pub alias: String,
    /// `use a::b::*` — `path` is the prefix, `alias` is empty.
    pub glob: bool,
    /// Re-export (`pub use`), consulted when resolving across crates.
    pub is_pub: bool,
    pub line: u32,
}

/// What a body event is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Free/path call: `foo(..)`, `a::b::foo(..)`, `Type::method(..)`.
    /// Segments have generics/turbofish stripped.
    Call(Vec<String>),
    /// Method call `recv.name(..)` — receiver type unknown to the parser.
    Method(String),
    /// Macro invocation `name!(..)`; the delimiter group is scanned for
    /// nested calls/methods but not for index/`?` events.
    MacroUse(String),
    /// Index expression `expr[..]`.
    Index,
    /// The `?` operator.
    Try,
}

/// One event inside a function body, in source order.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    pub line: u32,
    pub col: u32,
    /// For [`EventKind::Index`]: lexically inside a bounds-checking
    /// `if`/`while`/`for` block, or the brackets themselves mention a
    /// guard hint (`.len()`, `.min(..)`, …).
    pub guarded: bool,
    /// Inside an `unsafe { … }` block (informational).
    pub in_unsafe: bool,
}

/// One parsed function with its body reduced to events.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub self_ty: Option<String>,
    /// Trait name when inside `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Inline-module path *within the file* (file → module mapping is
    /// the call-graph layer's job).
    pub module: Vec<String>,
    pub line: u32,
    pub col: u32,
    /// Takes `self`/`&self`/`&mut self` — a method.
    pub has_receiver: bool,
    /// Under `#[cfg(test)]`, `#[test]`, or an inline `mod tests`.
    pub is_test: bool,
    pub events: Vec<Event>,
    /// Any identifier or string literal in the body mentions `tmp`/`temp`
    /// — marks temp-file handling for the durability-order rule.
    pub mentions_tmp: bool,
    /// The body mentions bounds-checking vocabulary ([`GUARD_HINTS`])
    /// anywhere — `len`, `get`, `min`, … Panic-free code validates with
    /// early returns before indexing (`let have = buf.len() - pos; if n
    /// > have { return Err(..) } … &buf[pos..pos+n]`), which no lexical
    /// block scope can associate with the later index; a function that
    /// shows *no* bounds vocabulary at all and still indexes is the
    /// suspicious case the panic-reachability rule flags.
    pub bounds_aware: bool,
}

/// Mutable per-body facts accumulated by the scanner.
#[derive(Default)]
struct BodyFacts {
    mentions_tmp: bool,
    bounds_aware: bool,
}

/// A tolerant-parse anomaly worth surfacing (unclosed delimiter, item
/// that never terminated). Not fatal: the AST up to that point stands.
#[derive(Debug, Clone)]
pub struct ParseNote {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

/// The per-file parse result.
#[derive(Debug, Clone, Default)]
pub struct Ast {
    pub fns: Vec<FnDef>,
    pub uses: Vec<UseDecl>,
    pub notes: Vec<ParseNote>,
}

/// Parses one file's code-token stream (comments already filtered out by
/// the caller via `code` indices into `tokens`).
pub fn parse(tokens: &[Token], code: &[usize]) -> Ast {
    let toks: Vec<&Token> = code.iter().map(|&i| &tokens[i]).collect();
    let mut p = Parser { toks, pos: 0, ast: Ast::default() };
    let mut module = Vec::new();
    p.items(&mut module, None, None, false, false);
    p.ast
}

struct Parser<'a> {
    toks: Vec<&'a Token>,
    pos: usize,
    ast: Ast,
}

/// Attribute summary for one item.
#[derive(Default)]
struct Attrs {
    /// `#[test]` directly on the item.
    test: bool,
    /// `#[cfg(test)]` / `#[cfg_attr(test, ..)]` on the item.
    cfg_test: bool,
}

impl<'a> Parser<'a> {
    fn text(&self) -> &str {
        self.toks.get(self.pos).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn text_at(&self, at: usize) -> &str {
        self.toks.get(at).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn kind(&self) -> Option<TokKind> {
        self.toks.get(self.pos).map(|t| t.kind)
    }

    fn kind_at(&self, at: usize) -> Option<TokKind> {
        self.toks.get(at).map(|t| t.kind)
    }

    fn pos_of(&self, at: usize) -> (u32, u32) {
        self.toks
            .get(at)
            .map(|t| (t.line, t.col))
            .unwrap_or_else(|| {
                self.toks
                    .last()
                    .map(|t| (t.line, t.col))
                    .unwrap_or((1, 1))
            })
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at(&self, s: &str) -> bool {
        self.text() == s
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.at(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn note(&mut self, message: &str) {
        let (line, col) = self.pos_of(self.pos);
        self.ast.notes.push(ParseNote { message: message.into(), line, col });
    }

    /// Skips a balanced `<…>` group starting at the current `<`. The
    /// lexer emits `>>` (and `<<`, `>>=`) as single shift tokens; in type
    /// position each counts as two angle brackets — this is the `>>`
    /// split that makes `Vec<Vec<f32>>` parse.
    fn skip_angles(&mut self) {
        let mut depth: i32 = 0;
        let start = self.pos;
        while !self.done() {
            match self.text() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ">>=" => depth -= 2, // pathological, but keep depth honest
                // A stray `;` or `{` at depth > 0 means this `<` was a
                // comparison after all — bail rather than eat the file.
                ";" | "{" => {
                    self.pos = start + 1;
                    return;
                }
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
        self.pos = start + 1;
    }

    /// Skips a balanced delimiter group; `open`/`close` are `(`/`)`,
    /// `[`/`]` or `{`/`}`. Current token must be `open`.
    fn skip_group(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while !self.done() {
            if self.at(open) {
                depth += 1;
            } else if self.at(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
        self.note(&format!("unclosed `{open}` at end of file"));
    }

    /// Parses any number of outer (`#[..]`) and inner (`#![..]`)
    /// attributes, summarising test gating.
    fn attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        loop {
            if self.at("#") && self.text_at(self.pos + 1) == "[" {
                self.bump();
                let attr_start = self.pos;
                self.skip_group("[", "]");
                let words: Vec<&str> = (attr_start..self.pos)
                    .map(|i| self.text_at(i))
                    .collect();
                let head = words.get(1).copied().unwrap_or("");
                if head == "test" {
                    out.test = true;
                }
                if (head == "cfg" || head == "cfg_attr") && words.contains(&"test") {
                    out.cfg_test = true;
                }
            } else if self.at("#")
                && self.text_at(self.pos + 1) == "!"
                && self.text_at(self.pos + 2) == "["
            {
                self.bump();
                self.bump();
                self.skip_group("[", "]");
            } else {
                return out;
            }
        }
    }

    /// Parses a sequence of items until EOF or (when `in_block`) the
    /// closing `}` of the enclosing module/impl/trait body.
    fn items(
        &mut self,
        module: &mut Vec<String>,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        in_test: bool,
        in_block: bool,
    ) {
        while !self.done() {
            if in_block && self.at("}") {
                return;
            }
            let attrs = self.attrs();
            if self.done() || (in_block && self.at("}")) {
                if in_block && !self.at("}") {
                    self.note("item block never closed");
                }
                return;
            }
            let item_test = in_test || attrs.test || attrs.cfg_test;
            // Visibility: `pub`, `pub(crate)`, `pub(in a::b)`.
            if self.eat("pub") && self.at("(") {
                self.skip_group("(", ")");
            }
            // Leading fn qualifiers. `const` only qualifies when `fn`,
            // `unsafe`, `extern` follow — otherwise it's a const item.
            loop {
                match self.text() {
                    "const"
                        if matches!(
                            self.text_at(self.pos + 1),
                            "fn" | "unsafe" | "extern"
                        ) =>
                    {
                        self.bump();
                    }
                    "async" => {
                        self.bump();
                    }
                    "unsafe" if self.text_at(self.pos + 1) != "{" => {
                        self.bump();
                    }
                    "extern" if self.kind_at(self.pos + 1) == Some(TokKind::Str) => {
                        self.bump();
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.text() {
                "use" => {
                    self.bump();
                    self.parse_use();
                }
                "mod" => {
                    self.bump();
                    let name = self.text().to_string();
                    let is_tests_mod = name == "tests" || name == "test";
                    self.bump();
                    if self.eat("{") {
                        module.push(name);
                        self.items(
                            module,
                            None,
                            None,
                            item_test || is_tests_mod,
                            true,
                        );
                        module.pop();
                        if !self.eat("}") {
                            self.note("module body never closed");
                        }
                    } else {
                        self.eat(";");
                    }
                }
                "fn" => {
                    self.parse_fn(module, self_ty, trait_name, item_test);
                }
                "impl" => {
                    self.parse_impl(module, item_test);
                }
                "trait" => {
                    self.bump();
                    let name = self.text().to_string();
                    self.bump();
                    if self.at("<") {
                        self.skip_angles();
                    }
                    // Supertraits / where-clause: scan to the body.
                    while !self.done() && !self.at("{") && !self.at(";") {
                        if self.at("<") {
                            self.skip_angles();
                        } else {
                            self.bump();
                        }
                    }
                    if self.eat("{") {
                        self.items(module, Some(&name), None, item_test, true);
                        if !self.eat("}") {
                            self.note("trait body never closed");
                        }
                    } else {
                        self.eat(";");
                    }
                }
                "struct" | "enum" | "union" => {
                    self.bump(); // keyword
                    self.bump(); // name
                    if self.at("<") {
                        self.skip_angles();
                    }
                    // Tuple struct `(..)`, then `;` or a brace body; a
                    // where-clause may precede either.
                    while !self.done() && !self.at("{") && !self.at(";") {
                        if self.at("(") {
                            self.skip_group("(", ")");
                        } else if self.at("<") {
                            self.skip_angles();
                        } else {
                            self.bump();
                        }
                    }
                    if self.at("{") {
                        self.skip_group("{", "}");
                    } else {
                        self.eat(";");
                    }
                }
                "const" | "static" | "type" => {
                    // Skip to the terminating `;`, balancing delimiters
                    // (array types/initialisers may contain `;` inside).
                    self.bump();
                    while !self.done() && !self.at(";") {
                        match self.text() {
                            "(" => self.skip_group("(", ")"),
                            "[" => self.skip_group("[", "]"),
                            "{" => self.skip_group("{", "}"),
                            "<" => self.skip_angles(),
                            _ => self.bump(),
                        }
                    }
                    self.eat(";");
                }
                "macro_rules" => {
                    self.bump();
                    self.eat("!");
                    self.bump(); // macro name
                    match self.text() {
                        "{" => self.skip_group("{", "}"),
                        "(" => self.skip_group("(", ")"),
                        "[" => self.skip_group("[", "]"),
                        _ => {}
                    }
                }
                "extern" => {
                    // `extern { … }` / `extern crate name;`
                    self.bump();
                    if self.at("{") {
                        self.skip_group("{", "}");
                    } else {
                        while !self.done() && !self.eat(";") {
                            self.bump();
                        }
                    }
                }
                _ => {
                    // Item-level macro invocation `name!{..}` / `name!(..);`
                    if self.kind() == Some(TokKind::Ident)
                        && self.text_at(self.pos + 1) == "!"
                    {
                        self.bump();
                        self.bump();
                        match self.text() {
                            "{" => self.skip_group("{", "}"),
                            "(" => {
                                self.skip_group("(", ")");
                                self.eat(";");
                            }
                            "[" => {
                                self.skip_group("[", "]");
                                self.eat(";");
                            }
                            _ => {}
                        }
                    } else {
                        // Tolerance: something we do not model — advance.
                        self.bump();
                    }
                }
            }
        }
    }

    /// Parses one `use` declaration (already past the `use` keyword),
    /// flattening group trees into leaf `UseDecl`s.
    fn parse_use(&mut self) {
        let is_pub = self.pos >= 2 && self.text_at(self.pos - 2) == "pub";
        let line = self.pos_of(self.pos).0;
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix, is_pub, line);
        self.eat(";");
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>, is_pub: bool, line: u32) {
        let depth_here = prefix.len();
        loop {
            match self.text() {
                "{" => {
                    self.bump();
                    loop {
                        if self.at("}") || self.done() {
                            break;
                        }
                        self.use_tree(prefix, is_pub, line);
                        if !self.eat(",") {
                            break;
                        }
                    }
                    if !self.eat("}") {
                        self.note("use group never closed");
                    }
                    break;
                }
                "*" => {
                    self.bump();
                    self.ast.uses.push(UseDecl {
                        path: prefix.clone(),
                        alias: String::new(),
                        glob: true,
                        is_pub,
                        line,
                    });
                    break;
                }
                "self" if depth_here < prefix.len() || !prefix.is_empty() => {
                    // `use a::b::{self, c}` — binds `b`.
                    self.bump();
                    let alias = if self.eat("as") {
                        let a = self.text().to_string();
                        self.bump();
                        a
                    } else {
                        prefix.last().cloned().unwrap_or_default()
                    };
                    self.ast.uses.push(UseDecl {
                        path: prefix.clone(),
                        alias,
                        glob: false,
                        is_pub,
                        line,
                    });
                    break;
                }
                _ if self.kind() == Some(TokKind::Ident) => {
                    prefix.push(self.text().to_string());
                    self.bump();
                    if self.eat("::") {
                        continue;
                    }
                    let alias = if self.eat("as") {
                        let a = self.text().to_string();
                        self.bump();
                        a
                    } else {
                        prefix.last().cloned().unwrap_or_default()
                    };
                    self.ast.uses.push(UseDecl {
                        path: prefix.clone(),
                        alias,
                        glob: false,
                        is_pub,
                        line,
                    });
                    break;
                }
                _ => break,
            }
        }
        prefix.truncate(depth_here);
    }

    /// Parses `impl [<..>] Type {..}` or `impl [<..>] Trait for Type {..}`.
    fn parse_impl(&mut self, module: &mut Vec<String>, in_test: bool) {
        self.bump(); // impl
        if self.at("<") {
            self.skip_angles();
        }
        let first = self.impl_type_name();
        let (ty, tr) = if self.eat("for") {
            let ty = self.impl_type_name();
            (ty, first)
        } else {
            (first, String::new())
        };
        // Where-clause before the body.
        while !self.done() && !self.at("{") && !self.at(";") {
            if self.at("<") {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
        if self.eat("{") {
            let trait_ref = if tr.is_empty() { None } else { Some(tr.as_str()) };
            self.items(module, Some(&ty), trait_ref, in_test, true);
            if !self.eat("}") {
                self.note("impl body never closed");
            }
        } else {
            self.eat(";");
        }
    }

    /// Reads one type path in an impl header, returning its last
    /// identifier (`fmt::Display` → `Display`, `FileCtx<'a>` → `FileCtx`,
    /// `&mut [f32]` → the element type's name best-effort).
    fn impl_type_name(&mut self) -> String {
        let mut name = String::new();
        loop {
            match self.text() {
                "&" | "mut" | "dyn" => {
                    self.bump();
                }
                "(" => {
                    self.skip_group("(", ")");
                }
                "[" => {
                    self.skip_group("[", "]");
                }
                "<" => {
                    self.skip_angles();
                }
                "::" => {
                    self.bump();
                }
                "for" | "where" | "{" | ";" | "" => return name,
                _ => {
                    if self.kind() == Some(TokKind::Ident) {
                        name = self.text().to_string();
                        self.bump();
                        if self.at("<") {
                            self.skip_angles();
                        }
                        if !self.at("::") {
                            return name;
                        }
                    } else {
                        self.bump();
                    }
                }
            }
        }
    }

    /// Parses one `fn` item (already at the `fn` keyword).
    fn parse_fn(
        &mut self,
        module: &[String],
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        is_test: bool,
    ) {
        self.bump(); // fn
        let (line, col) = self.pos_of(self.pos);
        let name = self.text().to_string();
        self.bump();
        if self.at("<") {
            self.skip_angles();
        }
        // Parameter list; a leading `self` (after lifetimes/&/mut) marks
        // a method.
        let mut has_receiver = false;
        if self.at("(") {
            let params_start = self.pos;
            self.skip_group("(", ")");
            for i in params_start + 1..self.pos {
                match self.text_at(i) {
                    "self" => {
                        has_receiver = true;
                        break;
                    }
                    "&" | "mut" => continue,
                    t if t.starts_with('\'') => continue,
                    _ => break,
                }
            }
        }
        // Return type and where-clause up to the body (or `;` for a
        // bodiless trait-method signature).
        while !self.done() && !self.at("{") && !self.at(";") {
            match self.text() {
                "<" => self.skip_angles(),
                "(" => self.skip_group("(", ")"),
                "[" => self.skip_group("[", "]"),
                _ => self.bump(),
            }
        }
        if self.eat(";") {
            return; // signature only — not a call target
        }
        if !self.at("{") {
            self.note("fn body never found");
            return;
        }
        let (events, facts) = self.body();
        self.ast.fns.push(FnDef {
            name,
            self_ty: self_ty.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            module: module.to_vec(),
            line,
            col,
            has_receiver,
            is_test,
            events,
            mentions_tmp: facts.mentions_tmp,
            bounds_aware: facts.bounds_aware,
        });
    }

    /// Scans one function body (current token is its `{`) into events.
    fn body(&mut self) -> (Vec<Event>, BodyFacts) {
        let mut events = Vec::new();
        let mut facts = BodyFacts::default();
        let mut depth = 0usize;
        // Brace depths at which a bounds-guarded block starts.
        let mut guard_stack: Vec<usize> = Vec::new();
        // Brace depths at which an `unsafe` block starts.
        let mut unsafe_stack: Vec<usize> = Vec::new();
        // Set when an `if`/`while`/`for` header with a guard hint was
        // scanned; applied to the next `{` at header paren depth 0.
        let mut pending_guard = false;
        let mut pending_unsafe = false;
        self.scan_block(
            &mut events,
            &mut facts,
            &mut depth,
            &mut guard_stack,
            &mut unsafe_stack,
            &mut pending_guard,
            &mut pending_unsafe,
            false,
        );
        (events, facts)
    }

    /// The body scanner. When `in_macro` is set (scanning a macro's
    /// delimiter group) only calls/method calls/macro uses are recorded —
    /// index and `?` events inside macro arguments would double-report
    /// the macro itself (`assert!(v[i] < n)`).
    #[allow(clippy::too_many_arguments)]
    fn scan_block(
        &mut self,
        events: &mut Vec<Event>,
        facts: &mut BodyFacts,
        depth: &mut usize,
        guard_stack: &mut Vec<usize>,
        unsafe_stack: &mut Vec<usize>,
        pending_guard: &mut bool,
        pending_unsafe: &mut bool,
        in_macro: bool,
    ) {
        if !self.at("{") && !(in_macro && (self.at("(") || self.at("["))) {
            return;
        }
        let (open, close) = match self.text() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => ("{", "}"),
        };
        let base = *depth;
        loop {
            if self.done() {
                self.note("fn body never closed");
                return;
            }
            let t = self.toks[self.pos];
            let guarded_here = !guard_stack.is_empty();
            let unsafe_here = !unsafe_stack.is_empty();
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, s) if s == open => {
                    *depth += 1;
                    if s == "{" {
                        if *pending_guard {
                            guard_stack.push(*depth);
                            *pending_guard = false;
                        }
                        if *pending_unsafe {
                            unsafe_stack.push(*depth);
                            *pending_unsafe = false;
                        }
                    }
                    self.bump();
                }
                (TokKind::Punct, s) if s == close => {
                    if s == "}" {
                        if guard_stack.last() == Some(depth) {
                            guard_stack.pop();
                        }
                        if unsafe_stack.last() == Some(depth) {
                            unsafe_stack.pop();
                        }
                    }
                    *depth -= 1;
                    self.bump();
                    if *depth == base {
                        return;
                    }
                }
                // Braces of the *other* kinds nest freely inside.
                (TokKind::Punct, "{") => {
                    *depth += 1;
                    if *pending_guard {
                        guard_stack.push(*depth);
                        *pending_guard = false;
                    }
                    if *pending_unsafe {
                        unsafe_stack.push(*depth);
                        *pending_unsafe = false;
                    }
                    self.bump();
                }
                (TokKind::Punct, "}") => {
                    if guard_stack.last() == Some(depth) {
                        guard_stack.pop();
                    }
                    if unsafe_stack.last() == Some(depth) {
                        unsafe_stack.pop();
                    }
                    *depth = depth.saturating_sub(1);
                    self.bump();
                }
                (TokKind::Punct, "#") if self.text_at(self.pos + 1) == "[" => {
                    // Statement-level attribute (`#[cfg(..)] let x = ..;`).
                    self.bump();
                    self.skip_group("[", "]");
                }
                (TokKind::Ident, "if" | "while" | "for" | "loop") => {
                    let kw = t.text.clone();
                    if kw != "loop" {
                        // Lookahead over the header up to its `{` at
                        // bracket depth 0; guard hints there protect the
                        // block's index expressions.
                        let mut j = self.pos + 1;
                        let mut d = 0usize;
                        let mut hint = false;
                        while j < self.toks.len() {
                            let s = self.text_at(j);
                            match s {
                                "(" | "[" => d += 1,
                                ")" | "]" => d = d.saturating_sub(1),
                                "{" if d == 0 => break,
                                ";" if d == 0 => break,
                                _ => {
                                    if GUARD_HINTS.contains(&s) {
                                        hint = true;
                                    }
                                }
                            }
                            j += 1;
                        }
                        if hint {
                            *pending_guard = true;
                        }
                    }
                    self.bump();
                }
                (TokKind::Ident, "unsafe") if self.text_at(self.pos + 1) == "{" => {
                    *pending_unsafe = true;
                    self.bump();
                }
                (TokKind::Ident, _) => {
                    if t.text.contains("tmp") || t.text.contains("temp") {
                        facts.mentions_tmp = true;
                    }
                    if GUARD_HINTS.contains(&t.text.as_str()) {
                        facts.bounds_aware = true;
                    }
                    self.scan_path_or_macro(
                        events,
                        facts,
                        depth,
                        guard_stack,
                        unsafe_stack,
                        pending_guard,
                        pending_unsafe,
                        in_macro,
                        guarded_here,
                        unsafe_here,
                    );
                }
                (TokKind::Punct, ".") => {
                    // `.name(` → method call; `.name::<..>(` → turbofish
                    // method; `.0` → tuple field; `.await`, `.name` →
                    // field access.
                    let name_at = self.pos + 1;
                    if self.kind_at(name_at) == Some(TokKind::Ident) {
                        let mname = self.text_at(name_at).to_string();
                        if mname.contains("tmp") || mname.contains("temp") {
                            facts.mentions_tmp = true;
                        }
                        if GUARD_HINTS.contains(&mname.as_str()) {
                            facts.bounds_aware = true;
                        }
                        let mut after = name_at + 1;
                        if self.text_at(after) == "::" && self.text_at(after + 1) == "<" {
                            // skip the turbofish with a local angle scan
                            let save = self.pos;
                            self.pos = after + 1;
                            self.skip_angles();
                            after = self.pos;
                            self.pos = save;
                        }
                        if self.text_at(after) == "(" {
                            let (line, col) = self.pos_of(name_at);
                            events.push(Event {
                                kind: EventKind::Method(mname),
                                line,
                                col,
                                guarded: guarded_here,
                                in_unsafe: unsafe_here,
                            });
                        }
                        self.pos = after; // land on `(`/next token
                    } else {
                        self.bump();
                        if self.kind() == Some(TokKind::Num) {
                            self.bump(); // tuple index
                        }
                    }
                }
                (TokKind::Punct, "[") => {
                    // Index expression when following a value-producing
                    // token; array literal otherwise.
                    let prev_is_value = self
                        .pos
                        .checked_sub(1)
                        .map(|i| {
                            matches!(
                                self.kind_at(i),
                                Some(
                                    TokKind::Ident
                                        | TokKind::Num
                                        | TokKind::Str
                                        | TokKind::RawStr
                                )
                            ) && !matches!(
                                self.text_at(i),
                                "in" | "return" | "else" | "match" | "if"
                                    | "break" | "mut" | "as" | "let"
                            ) || matches!(self.text_at(i), ")" | "]")
                        })
                        .unwrap_or(false);
                    if prev_is_value && !in_macro {
                        // Content guard: the brackets mention a hint, or
                        // hold a single constant (`header[3]` into a
                        // fixed just-validated buffer is infallible by
                        // construction — computed indices are the risk),
                        // or a single string literal (`v["config"]`:
                        // map-style `Index` impls are total, returning
                        // null/default for missing keys).
                        let mut j = self.pos + 1;
                        let mut d = 1usize;
                        let mut content_hint = false;
                        let mut content_toks = 0usize;
                        let mut single_lit = false;
                        while j < self.toks.len() && d > 0 {
                            match self.text_at(j) {
                                "[" => d += 1,
                                "]" => d -= 1,
                                s => {
                                    if GUARD_HINTS.contains(&s) {
                                        content_hint = true;
                                    }
                                }
                            }
                            if d > 0 {
                                content_toks += 1;
                                single_lit = content_toks == 1
                                    && matches!(
                                        self.kind_at(j),
                                        Some(TokKind::Num | TokKind::Str)
                                    );
                            }
                            j += 1;
                        }
                        let (line, col) = self.pos_of(self.pos);
                        events.push(Event {
                            kind: EventKind::Index,
                            line,
                            col,
                            guarded: guarded_here || content_hint || single_lit,
                            in_unsafe: unsafe_here,
                        });
                    }
                    self.bump(); // scan bracket contents normally
                }
                (TokKind::Punct, "?") => {
                    if !in_macro && self.text_at(self.pos + 1) != "Sized" {
                        let (line, col) = self.pos_of(self.pos);
                        events.push(Event {
                            kind: EventKind::Try,
                            line,
                            col,
                            guarded: guarded_here,
                            in_unsafe: unsafe_here,
                        });
                    }
                    self.bump();
                }
                (TokKind::Str | TokKind::RawStr, _) => {
                    if t.text.contains("tmp") || t.text.contains("temp") {
                        facts.mentions_tmp = true;
                    }
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// At an identifier inside a body: a macro use (`name!`), a path call
    /// (`a::b::f(`, `Type::method(`, turbofish included), or a plain
    /// expression identifier.
    #[allow(clippy::too_many_arguments)]
    fn scan_path_or_macro(
        &mut self,
        events: &mut Vec<Event>,
        facts: &mut BodyFacts,
        depth: &mut usize,
        guard_stack: &mut Vec<usize>,
        unsafe_stack: &mut Vec<usize>,
        pending_guard: &mut bool,
        pending_unsafe: &mut bool,
        _in_macro: bool,
        guarded: bool,
        in_unsafe: bool,
    ) {
        let start = self.pos;
        let (line, col) = self.pos_of(start);
        let mut segs = vec![self.text().to_string()];
        self.bump();
        // Macro invocation?
        if self.at("!") && self.text_at(self.pos + 1) != "=" {
            let peek = self.text_at(self.pos + 1);
            if matches!(peek, "(" | "[" | "{") {
                events.push(Event {
                    kind: EventKind::MacroUse(segs[0].clone()),
                    line,
                    col,
                    guarded,
                    in_unsafe,
                });
                self.bump(); // !
                // Scan the macro group for nested calls (not sinks).
                let before = *depth;
                self.scan_block(
                    events,
                    facts,
                    depth,
                    guard_stack,
                    unsafe_stack,
                    pending_guard,
                    pending_unsafe,
                    true,
                );
                *depth = before;
                return;
            }
            // `!` as negation of the next expression — leave it.
            return;
        }
        // Path: `::` segments with optional turbofish groups.
        loop {
            if self.at("::") {
                let after = self.pos + 1;
                if self.text_at(after) == "<" {
                    self.bump(); // ::
                    self.skip_angles();
                    continue;
                }
                if self.kind_at(after) == Some(TokKind::Ident) {
                    self.bump(); // ::
                    let seg = self.text().to_string();
                    if seg.contains("tmp") || seg.contains("temp") {
                        facts.mentions_tmp = true;
                    }
                    segs.push(seg);
                    self.bump();
                    continue;
                }
            }
            break;
        }
        if self.at("(") {
            events.push(Event {
                kind: EventKind::Call(segs),
                line,
                col,
                guarded,
                in_unsafe,
            });
        }
    }
}
