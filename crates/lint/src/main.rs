//! Standalone lint driver: `cargo run -p hisres-lint -- [OPTIONS]`.
//!
//! ```text
//! hisres-lint [--root DIR] [--deny-all] [--json] [--out FILE]
//! hisres-lint --check FILE      # validate a previously written report
//! hisres-lint --list-rules
//! ```
//!
//! Exit code 0 when the tree is clean (or only warnings without
//! `--deny-all`), 1 on any error-severity diagnostic, 2 on usage or
//! I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: hisres-lint [--root DIR] [--deny-all] [--json] [--out FILE]\n\
     \x20      hisres-lint --check FILE | --list-rules"
}

/// Reports a driver failure (not a lint finding) on stderr.
fn fail(msg: String) -> ExitCode {
    eprintln!("hisres-lint: {msg}"); // lint:allow(no-debug-leftovers): CLI driver errors belong on stderr
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => root = argv.next().map(PathBuf::from),
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--out" => out = argv.next().map(PathBuf::from),
            "--check" => check = argv.next().map(PathBuf::from),
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(format!("unknown argument {other:?}\n{}", usage())),
        }
    }

    if list_rules {
        for r in hisres_lint::rules::config() {
            println!(
                "{:<24} {:<6} {:<8} {}",
                r.id,
                r.kind,
                r.severity.as_str(),
                r.description
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail(format!("cannot read {}: {e}", path.display())),
        };
        return match hisres_lint::check_report(&text) {
            Ok(()) => {
                println!("hisres-lint --check: OK ({})", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                println!("hisres-lint: bad report {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match hisres_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    return fail(format!("no workspace root found above {}", cwd.display()))
                }
            }
        }
    };

    let opts = hisres_lint::Options { deny_all };
    let report = match hisres_lint::run(&root, &opts) {
        Ok(r) => r,
        Err(e) => return fail(e.to_string()),
    };

    let rendered = if json {
        report.to_json().to_json_string()
    } else {
        let mut s = String::new();
        for d in &report.diagnostics {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        s.push_str(&report.graph_summary());
        s.push('\n');
        s.push_str(&format!(
            "hisres-lint: {} file(s), {} diagnostic(s), {} suppressed{}",
            report.files_scanned,
            report.diagnostics.len(),
            report.suppressed,
            if report.has_errors() { " — FAIL" } else { " — OK" }
        ));
        s
    };

    if let Some(out_path) = &out {
        if let Err(e) = hisres_util::fsio::atomic_write(out_path, rendered.as_bytes()) {
            return fail(format!("cannot write {}: {e}", out_path.display()));
        }
    } else {
        println!("{rendered}");
    }

    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
