//! `hisres-lint` — the workspace's from-scratch static-analysis engine.
//!
//! PRs 2–4 established invariants this reproduction depends on
//! (panic-free serving, atomic-only checkpoint writes, pool-only
//! threading, bit-deterministic gradient kernels). They used to be
//! policed by line-oriented `grep` in `scripts/verify.sh`, which
//! false-positived on comments and strings and could not see
//! `#[cfg(test)]` context. This crate replaces those guards with a real
//! lexer ([`lexer`]) feeding a token-stream rule engine ([`rules`])
//! that emits structured diagnostics ([`diag`]) with exact
//! `file:line:col` positions, human and `--json` renderings, and a
//! nonzero exit on violation.
//!
//! Run it as `cargo run -p hisres-lint -- --deny-all` or via the main
//! CLI as `hisres lint`.

pub mod diag;
pub mod lexer;
pub mod rules;

use diag::{Diagnostic, Severity};
use hisres_util::json::Value;
use rules::{check_file, config, FileCtx};
use std::fs;
use std::path::{Path, PathBuf};

/// Identifies the JSON report layout; bump when fields change.
pub const REPORT_SCHEMA: &str = "hisres-lint/v1";

/// Options for one lint run.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Escalate warning-severity diagnostics to errors.
    pub deny_all: bool,
}

/// The outcome of linting a tree.
pub struct Report {
    /// Workspace root the paths in `diagnostics` are relative to.
    pub root: PathBuf,
    pub files_scanned: usize,
    /// Violations silenced by a well-formed `lint:allow`.
    pub suppressed: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether the run should fail the build.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The machine-readable rendering, stable under [`REPORT_SCHEMA`].
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("schema".into(), Value::Str(REPORT_SCHEMA.into())),
            (
                "root".into(),
                Value::Str(self.root.display().to_string()),
            ),
            (
                "files_scanned".into(),
                Value::Num(self.files_scanned as f64),
            ),
            ("suppressed".into(), Value::Num(self.suppressed as f64)),
            (
                "rules".into(),
                Value::Arr(
                    config()
                        .iter()
                        .map(|r| {
                            Value::Obj(vec![
                                ("id".into(), Value::Str(r.id.into())),
                                (
                                    "severity".into(),
                                    Value::Str(r.severity.as_str().into()),
                                ),
                                (
                                    "description".into(),
                                    Value::Str(r.description.into()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "diagnostics".into(),
                Value::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

/// Collects every `.rs` file under `root`, skipping build output
/// (`target/`), VCS internals and lint fixtures (which contain
/// violations on purpose). Deterministic: paths come back sorted.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `root` against the configured rule set.
pub fn run(root: &Path, opts: &Options) -> std::io::Result<Report> {
    let rules = config();
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    let files = collect_rs_files(root)?;
    let files_scanned = files.len();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        match FileCtx::new(&rel, &source) {
            Ok(ctx) => diagnostics.extend(check_file(&ctx, &rules, &mut suppressed)),
            Err(e) => diagnostics.push(Diagnostic {
                rule: "lex-error",
                severity: Severity::Error,
                file: rel,
                line: e.line,
                col: e.col,
                message: e.message,
                snippet: String::new(),
            }),
        }
    }
    if opts.deny_all {
        for d in &mut diagnostics {
            d.severity = Severity::Error;
        }
    }
    Ok(Report {
        root: root.to_path_buf(),
        files_scanned,
        suppressed,
        diagnostics,
    })
}

/// Validates a previously emitted `--json` report against the
/// [`REPORT_SCHEMA`] layout, so downstream tooling can rely on the
/// shape (mirrors the `kernels --check` pattern for BENCH_kernels.json).
pub fn check_report(text: &str) -> Result<(), String> {
    let v = hisres_util::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing string field: schema")?;
    if schema != REPORT_SCHEMA {
        return Err(format!("schema is {schema:?}, expected {REPORT_SCHEMA:?}"));
    }
    v.get("root")
        .and_then(Value::as_str)
        .ok_or("missing string field: root")?;
    for field in ["files_scanned", "suppressed"] {
        v.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing integer field: {field}"))?;
    }
    let rules = v
        .get("rules")
        .and_then(Value::as_array)
        .ok_or("missing array field: rules")?;
    if rules.is_empty() {
        return Err("rules array is empty".into());
    }
    for r in rules {
        for field in ["id", "severity", "description"] {
            r.get(field)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("rule entry missing string field: {field}"))?;
        }
    }
    let diags = v
        .get("diagnostics")
        .and_then(Value::as_array)
        .ok_or("missing array field: diagnostics")?;
    for d in diags {
        for field in ["rule", "severity", "file", "message", "snippet"] {
            d.get(field)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("diagnostic missing string field: {field}"))?;
        }
        for field in ["line", "col"] {
            d.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("diagnostic missing integer field: {field}"))?;
        }
        let sev = d.get("severity").and_then(Value::as_str).unwrap_or("");
        if sev != "warning" && sev != "error" {
            return Err(format!("diagnostic severity {sev:?} not warning|error"));
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` section appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
