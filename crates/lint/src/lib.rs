//! `hisres-lint` — the workspace's from-scratch static-analysis engine.
//!
//! PRs 2–4 established invariants this reproduction depends on
//! (panic-free serving, atomic-only checkpoint writes, pool-only
//! threading, bit-deterministic gradient kernels). They used to be
//! policed by line-oriented `grep` in `scripts/verify.sh`, which
//! false-positived on comments and strings and could not see
//! `#[cfg(test)]` context. This crate replaces those guards with a real
//! lexer ([`lexer`]) feeding a token-stream rule engine ([`rules`])
//! that emits structured diagnostics ([`diag`]) with exact
//! `file:line:col` positions, human and `--json` renderings, and a
//! nonzero exit on violation.
//!
//! Run it as `cargo run -p hisres-lint -- --deny-all` or via the main
//! CLI as `hisres lint`.

pub mod callgraph;
pub mod diag;
pub mod graph_rules;
pub mod lexer;
pub mod parser;
pub mod rules;

use diag::{Diagnostic, Severity};
use hisres_util::json::Value;
use rules::{check_file, config, FileCtx};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Identifies the JSON report layout; bump when fields change.
/// v2 added per-rule wall-clock timings, call-graph stats and
/// diagnostic `chain` arrays on top of v1.
pub const REPORT_SCHEMA: &str = "hisres-lint/v2";

/// Options for one lint run.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Escalate warning-severity diagnostics to errors.
    pub deny_all: bool,
}

/// The outcome of linting a tree.
pub struct Report {
    /// Workspace root the paths in `diagnostics` are relative to.
    pub root: PathBuf,
    pub files_scanned: usize,
    /// Violations silenced by a well-formed `lint:allow`.
    pub suppressed: usize,
    pub diagnostics: Vec<Diagnostic>,
    /// Call-graph resolution counters from [`callgraph::build`].
    pub graph: callgraph::Stats,
    /// Per-rule wall-clock milliseconds (token rules accumulated across
    /// files; graph rules measured once). Extra `"parse+callgraph"`
    /// entry covers the shared analysis the graph rules run on.
    pub timings: BTreeMap<&'static str, f64>,
    /// End-to-end wall-clock of [`run`], milliseconds.
    pub elapsed_ms: f64,
}

impl Report {
    /// Whether the run should fail the build.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// One-line human summary of the call-graph stats, printed by the
    /// drivers above the v1-shaped summary line.
    pub fn graph_summary(&self) -> String {
        format!(
            "hisres-lint graph: {} fns, {} edges ({} unresolved, {} ambiguous, {} external) in {:.0} ms",
            self.graph.nodes,
            self.graph.edges,
            self.graph.unresolved,
            self.graph.ambiguous,
            self.graph.external,
            self.elapsed_ms
        )
    }

    /// The machine-readable rendering, stable under [`REPORT_SCHEMA`].
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("schema".into(), Value::Str(REPORT_SCHEMA.into())),
            (
                "root".into(),
                Value::Str(self.root.display().to_string()),
            ),
            (
                "files_scanned".into(),
                Value::Num(self.files_scanned as f64),
            ),
            ("suppressed".into(), Value::Num(self.suppressed as f64)),
            ("elapsed_ms".into(), Value::Num(self.elapsed_ms)),
            (
                "graph".into(),
                Value::Obj(vec![
                    ("nodes".into(), Value::Num(self.graph.nodes as f64)),
                    ("edges".into(), Value::Num(self.graph.edges as f64)),
                    (
                        "unresolved".into(),
                        Value::Num(self.graph.unresolved as f64),
                    ),
                    (
                        "ambiguous".into(),
                        Value::Num(self.graph.ambiguous as f64),
                    ),
                    ("external".into(), Value::Num(self.graph.external as f64)),
                ]),
            ),
            (
                "rules".into(),
                Value::Arr(
                    config()
                        .iter()
                        .map(|r| {
                            Value::Obj(vec![
                                ("id".into(), Value::Str(r.id.into())),
                                (
                                    "severity".into(),
                                    Value::Str(r.severity.as_str().into()),
                                ),
                                ("kind".into(), Value::Str(r.kind.into())),
                                (
                                    "description".into(),
                                    Value::Str(r.description.into()),
                                ),
                                (
                                    "time_ms".into(),
                                    Value::Num(
                                        self.timings.get(r.id).copied().unwrap_or(0.0),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "diagnostics".into(),
                Value::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

/// Collects every `.rs` file under `root`, skipping build output
/// (`target/`), VCS internals and lint fixtures (which contain
/// violations on purpose). Deterministic: paths come back sorted.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `root`: token rules per file, then the
/// workspace call graph and the graph rules over it, then the
/// unused-suppression sweep (which needs every other rule to have
/// marked the allows it used).
pub fn run(root: &Path, opts: &Options) -> std::io::Result<Report> {
    let t_total = Instant::now();
    let rules = config();
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    let mut timings: BTreeMap<&'static str, f64> = BTreeMap::new();

    // Pass 1: read every source file (kept alive for FileCtx borrows).
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, fs::read_to_string(&path)?));
    }
    let files_scanned = sources.len();

    // Pass 2: lex into FileCtx; lex failures become diagnostics and the
    // file drops out of the later passes.
    let mut ctxs: Vec<FileCtx<'_>> = Vec::new();
    for (rel, source) in &sources {
        match FileCtx::new(rel, source) {
            Ok(ctx) => ctxs.push(ctx),
            Err(e) => diagnostics.push(Diagnostic {
                rule: "lex-error",
                severity: Severity::Error,
                file: rel.clone(),
                line: e.line,
                col: e.col,
                message: e.message,
                snippet: String::new(),
                chain: Vec::new(),
            }),
        }
    }

    // Pass 3: token rules, per file.
    for ctx in &ctxs {
        diagnostics.extend(check_file(ctx, &rules, &mut suppressed, &mut timings));
    }

    // Pass 4: parse + call graph. Parse anomalies (tolerated syntax the
    // parser could not model) surface as warnings so analysis gaps are
    // visible rather than silent.
    let t0 = Instant::now();
    let parsed: Vec<callgraph::ParsedFile> = ctxs
        .iter()
        .map(|ctx| callgraph::ParsedFile {
            rel: ctx.path.to_string(),
            ast: parser::parse(&ctx.tokens, &ctx.code),
        })
        .collect();
    for pf in &parsed {
        for note in &pf.ast.notes {
            diagnostics.push(Diagnostic {
                rule: "parse-error",
                severity: Severity::Warning,
                file: pf.rel.clone(),
                line: note.line,
                col: note.col,
                message: format!("{} (analysis of this item is incomplete)", note.message),
                snippet: String::new(),
                chain: Vec::new(),
            });
        }
    }
    let crate_map = callgraph::crate_names(root);
    let graph = callgraph::build(&parsed, &crate_map);
    timings.insert("parse+callgraph", t0.elapsed().as_secs_f64() * 1e3);

    // Pass 5: graph rules.
    let ctx_map: BTreeMap<&str, &FileCtx> =
        ctxs.iter().map(|c| (c.path, c)).collect();
    let t0 = Instant::now();
    graph_rules::check_panic_reachability(&graph, &ctx_map, &mut suppressed, &mut diagnostics);
    timings.insert("panic-reachability", t0.elapsed().as_secs_f64() * 1e3);
    let t0 = Instant::now();
    graph_rules::check_hot_alloc_reachable(&graph, &ctx_map, &mut suppressed, &mut diagnostics);
    timings.insert("no-hot-alloc-reachable", t0.elapsed().as_secs_f64() * 1e3);
    let t0 = Instant::now();
    graph_rules::check_durability_order(&graph, &ctx_map, &mut suppressed, &mut diagnostics);
    timings.insert("durability-order", t0.elapsed().as_secs_f64() * 1e3);

    // Pass 6: unused suppressions. Every rule above has marked the
    // allows it consumed; whatever is left either names a rule that no
    // longer exists (syntax error) or no longer fires (stale).
    let t0 = Instant::now();
    let known: std::collections::BTreeSet<&str> =
        rules.iter().map(|r| r.id).collect();
    for ctx in &ctxs {
        for a in &ctx.allows {
            if a.rules.is_empty() || a.used.get() {
                continue; // malformed ones are reported by check_file
            }
            if let Some(unknown) =
                a.rules.iter().find(|r| !known.contains(r.as_str()))
            {
                diagnostics.push(Diagnostic {
                    rule: "lint-allow-syntax",
                    severity: Severity::Error,
                    file: ctx.path.into(),
                    line: a.line,
                    col: 1,
                    message: format!(
                        "lint:allow names unknown rule {unknown:?}; known rules: \
                         see --list-rules"
                    ),
                    snippet: ctx.snippet(a.line),
                    chain: Vec::new(),
                });
            } else {
                diagnostics.push(Diagnostic {
                    rule: "unused-suppression",
                    severity: Severity::Warning,
                    file: ctx.path.into(),
                    line: a.line,
                    col: 1,
                    message: format!(
                        "lint:allow({}) no longer suppresses anything on this \
                         line; delete it",
                        a.rules.join(", ")
                    ),
                    snippet: ctx.snippet(a.line),
                    chain: Vec::new(),
                });
            }
        }
    }
    timings.insert("unused-suppression", t0.elapsed().as_secs_f64() * 1e3);

    // Deterministic report order regardless of pass structure.
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule,
        ))
    });
    if opts.deny_all {
        for d in &mut diagnostics {
            d.severity = Severity::Error;
        }
    }
    Ok(Report {
        root: root.to_path_buf(),
        files_scanned,
        suppressed,
        diagnostics,
        graph: graph.stats,
        timings,
        elapsed_ms: t_total.elapsed().as_secs_f64() * 1e3,
    })
}

/// Validates a previously emitted `--json` report against the
/// [`REPORT_SCHEMA`] layout, so downstream tooling can rely on the
/// shape (mirrors the `kernels --check` pattern for BENCH_kernels.json).
pub fn check_report(text: &str) -> Result<(), String> {
    let v = hisres_util::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing string field: schema")?;
    if schema != REPORT_SCHEMA {
        return Err(format!("schema is {schema:?}, expected {REPORT_SCHEMA:?}"));
    }
    v.get("root")
        .and_then(Value::as_str)
        .ok_or("missing string field: root")?;
    for field in ["files_scanned", "suppressed"] {
        v.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing integer field: {field}"))?;
    }
    v.get("elapsed_ms")
        .and_then(Value::as_f64)
        .ok_or("missing number field: elapsed_ms")?;
    let graph = v.get("graph").ok_or("missing object field: graph")?;
    for field in ["nodes", "edges", "unresolved", "ambiguous", "external"] {
        graph
            .get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("graph missing integer field: {field}"))?;
    }
    let rules = v
        .get("rules")
        .and_then(Value::as_array)
        .ok_or("missing array field: rules")?;
    if rules.is_empty() {
        return Err("rules array is empty".into());
    }
    for r in rules {
        for field in ["id", "severity", "kind", "description"] {
            r.get(field)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("rule entry missing string field: {field}"))?;
        }
        let kind = r.get("kind").and_then(Value::as_str).unwrap_or("");
        if kind != "token" && kind != "graph" {
            return Err(format!("rule kind {kind:?} not token|graph"));
        }
        r.get("time_ms")
            .and_then(Value::as_f64)
            .ok_or("rule entry missing number field: time_ms")?;
    }
    let diags = v
        .get("diagnostics")
        .and_then(Value::as_array)
        .ok_or("missing array field: diagnostics")?;
    for d in diags {
        for field in ["rule", "severity", "file", "message", "snippet"] {
            d.get(field)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("diagnostic missing string field: {field}"))?;
        }
        for field in ["line", "col"] {
            d.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("diagnostic missing integer field: {field}"))?;
        }
        let chain = d
            .get("chain")
            .and_then(Value::as_array)
            .ok_or("diagnostic missing array field: chain")?;
        if chain.iter().any(|c| c.as_str().is_none()) {
            return Err("diagnostic chain entries must be strings".into());
        }
        let sev = d.get("severity").and_then(Value::as_str).unwrap_or("");
        if sev != "warning" && sev != "error" {
            return Err(format!("diagnostic severity {sev:?} not warning|error"));
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` section appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
