//! A from-scratch Rust lexer, sufficient for token-aware lint rules.
//!
//! This is deliberately *not* a full `rustc` lexer: it has no notion of
//! keywords, macros-by-example, or shebang/frontmatter handling. What it
//! does get right are the cases that break naive `grep`-based guards:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), emitted as comment tokens so rules can skip them
//!   while the suppression scanner can still read them;
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   with arbitrary hash fences (`r#"…"#`, `br##"…"##`) — a `.unwrap()`
//!   *inside* a string must never trigger a rule;
//! * char and byte literals, including `'"'`, `'\''` and `'\\'`;
//! * lifetimes (`'a`, `'static`) disambiguated from char literals;
//! * numeric literals with enough fidelity to classify floats
//!   (`1.0`, `1.`, `1e-3`, `0.5f32`) apart from integers, ranges
//!   (`0..n`) and tuple-field access (`pair.0`);
//! * multi-char operators (`::`, `==`, `!=`, `..=`, `<<=`, …) grouped
//!   longest-match-first so `==` is one token, never `=` `=`.
//!
//! Every token carries its 1-based `line` and `col` so diagnostics can
//! point at the exact source location.

use std::fmt;

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` or `'static` (including the quote).
    Lifetime,
    /// Char literal `'x'` or byte literal `b'x'`.
    CharLit,
    /// Cooked string `"…"` or byte string `b"…"`, escapes included verbatim.
    Str,
    /// Raw string `r"…"`/`r#"…"#` or raw byte string `br#"…"#`.
    RawStr,
    /// Integer or float literal, suffix included (`1.0f32`, `0xff_u8`).
    Num,
    /// Operator or punctuation, possibly multi-char (`::`, `==`, `..=`).
    Punct,
    /// `//`-style comment, text includes the slashes, excludes the newline.
    LineComment,
    /// `/* … */` comment (nesting allowed), text includes delimiters.
    BlockComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is source code (not a comment).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this numeric token is a float literal (`1.0`, `1.`, `2e5`,
    /// `0.5f32`). Hex/octal/binary literals are never floats, and an `E`
    /// inside `0xE0` is a hex digit, not an exponent.
    pub fn is_float(&self) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("0b")
            || t.starts_with("0B") || t.starts_with("0o") || t.starts_with("0O")
        {
            return false;
        }
        t.contains('.')
            || t.contains(['e', 'E'])
            || t.ends_with("f32")
            || t.ends_with("f64")
    }
}

/// A lexing failure (unterminated construct); points at the opening
/// delimiter so the user can find the problem.
#[derive(Debug, Clone)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-char operators, longest first so the scanner can greedily match.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=",
    "&&", "||", "<<", ">>", "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=",
];

struct Cursor<'a> {
    src: &'a [char],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes an entire source file into a token stream.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = source.chars().collect();
    let mut cur = Cursor { src: &chars, pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let tok = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)?
        } else if c == 'r' && is_raw_string_ahead(&cur, 1) {
            cur.bump();
            lex_raw_string(&mut cur, "r", line, col)?
        } else if c == 'b' && cur.peek(1) == Some('r') && is_raw_string_ahead(&cur, 2) {
            cur.bump();
            cur.bump();
            lex_raw_string(&mut cur, "br", line, col)?
        } else if c == 'b' && cur.peek(1) == Some('"') {
            cur.bump();
            lex_string(&mut cur, "b", line, col)?
        } else if c == 'b' && cur.peek(1) == Some('\'') {
            cur.bump();
            lex_char(&mut cur, "b", line, col)?
        } else if c == '"' {
            lex_string(&mut cur, "", line, col)?
        } else if c == '\'' {
            lex_quote(&mut cur, line, col)?
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            lex_punct(&mut cur)
        };
        out.push(Token { line, col, ..tok });
    }
    Ok(out)
}

/// After an `r` (offset already past any `b`), does a raw string follow?
/// Must see zero or more `#` then `"`; bare `r` is an identifier.
fn is_raw_string_ahead(cur: &Cursor, mut ahead: usize) -> bool {
    while cur.peek(ahead) == Some('#') {
        ahead += 1;
    }
    cur.peek(ahead) == Some('"')
}

fn lex_line_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokKind::LineComment, text, line: 0, col: 0 }
}

fn lex_block_comment(cur: &mut Cursor) -> Result<Token, LexError> {
    let (line, col) = (cur.line, cur.col);
    let mut text = String::new();
    let mut depth = 0usize;
    loop {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push('/');
                text.push('*');
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                text.push('*');
                text.push('/');
                cur.bump();
                cur.bump();
                if depth == 0 {
                    return Ok(Token { kind: TokKind::BlockComment, text, line: 0, col: 0 });
                }
            }
            (Some(c), _) => {
                text.push(c);
                cur.bump();
            }
            (None, _) => {
                return Err(LexError {
                    message: "unterminated block comment".into(),
                    line,
                    col,
                })
            }
        }
    }
}

fn lex_string(cur: &mut Cursor, prefix: &str, line: u32, col: u32) -> Result<Token, LexError> {
    let mut text = String::from(prefix);
    text.push('"');
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('\\') => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            Some('"') => {
                text.push('"');
                break;
            }
            Some(c) => text.push(c),
            None => {
                return Err(LexError {
                    message: "unterminated string literal".into(),
                    line,
                    col,
                })
            }
        }
    }
    Ok(Token { kind: TokKind::Str, text, line: 0, col: 0 })
}

fn lex_raw_string(cur: &mut Cursor, prefix: &str, line: u32, col: u32) -> Result<Token, LexError> {
    let mut text = String::from(prefix);
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    text.push('"');
    cur.bump(); // opening quote
    // The string ends at `"` followed by exactly `hashes` hash marks.
    loop {
        match cur.bump() {
            Some('"') => {
                text.push('"');
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some('#') {
                    seen += 1;
                    text.push('#');
                    cur.bump();
                }
                if seen == hashes {
                    return Ok(Token { kind: TokKind::RawStr, text, line: 0, col: 0 });
                }
                // Not a real fence — the consumed hashes are string content.
            }
            Some(c) => text.push(c),
            None => {
                return Err(LexError {
                    message: "unterminated raw string literal".into(),
                    line,
                    col,
                })
            }
        }
    }
}

/// A `'` begins either a char literal or a lifetime. It is a char literal
/// when the closing quote arrives after one (possibly escaped) char, or
/// after an identifier of length 1 (`'x'`); otherwise `'ident` with no
/// closing quote is a lifetime (`'a`, `'static`).
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Result<Token, LexError> {
    match cur.peek(1) {
        Some(c) if is_ident_start(c) && cur.peek(2) != Some('\'') => {
            // Lifetime: consume `'` plus the identifier.
            let mut text = String::from('\'');
            cur.bump();
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Ok(Token { kind: TokKind::Lifetime, text, line: 0, col: 0 })
        }
        _ => lex_char(cur, "", line, col),
    }
}

fn lex_char(cur: &mut Cursor, prefix: &str, line: u32, col: u32) -> Result<Token, LexError> {
    let mut text = String::from(prefix);
    text.push('\'');
    cur.bump(); // opening quote
    match cur.bump() {
        Some('\\') => {
            text.push('\\');
            let escape = cur.bump();
            if let Some(e) = escape {
                text.push(e);
            }
            // Unicode escape `\u{1F980}`: consume through the brace.
            if escape == Some('u') && cur.peek(0) == Some('{') {
                while let Some(c) = cur.bump() {
                    text.push(c);
                    if c == '}' {
                        break;
                    }
                }
            }
        }
        Some(c) => text.push(c),
        None => {
            return Err(LexError { message: "unterminated char literal".into(), line, col })
        }
    }
    match cur.bump() {
        Some('\'') => {
            text.push('\'');
            Ok(Token { kind: TokKind::CharLit, text, line: 0, col: 0 })
        }
        _ => Err(LexError { message: "unterminated char literal".into(), line, col }),
    }
}

fn lex_ident(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokKind::Ident, text, line: 0, col: 0 }
}

fn lex_number(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    let radix_prefix = matches!(
        (cur.peek(0), cur.peek(1)),
        (Some('0'), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O'))
    );
    if radix_prefix {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token { kind: TokKind::Num, text, line: 0, col: 0 };
    }
    let digits = |text: &mut String, cur: &mut Cursor| {
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    };
    digits(&mut text, cur);
    // A fractional part: `.` NOT followed by another `.` (range `0..n`)
    // and NOT followed by an identifier (`pair.0.clone()`, `1.max(2)`).
    if cur.peek(0) == Some('.') {
        let next = cur.peek(1);
        let is_fraction = match next {
            Some('.') => false,
            Some(c) if is_ident_start(c) => false,
            _ => true,
        };
        if is_fraction {
            text.push('.');
            cur.bump();
            digits(&mut text, cur);
        }
    }
    // Exponent: `e`/`E` with optional sign, only if digits follow.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (sign, digit_at) = match cur.peek(1) {
            Some('+' | '-') => (true, 2),
            _ => (false, 1),
        };
        if matches!(cur.peek(digit_at), Some(c) if c.is_ascii_digit()) {
            text.push(cur.bump().unwrap_or('e'));
            if sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            digits(&mut text, cur);
        }
    }
    // Type suffix (`f32`, `u64`, `usize`), glued directly on.
    if matches!(cur.peek(0), Some(c) if is_ident_start(c)) {
        while let Some(c) = cur.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    Token { kind: TokKind::Num, text, line: 0, col: 0 }
}

fn lex_punct(cur: &mut Cursor) -> Token {
    for op in OPERATORS {
        let matches_op = op
            .chars()
            .enumerate()
            .all(|(i, oc)| cur.peek(i) == Some(oc));
        if matches_op {
            for _ in 0..op.len() {
                cur.bump();
            }
            return Token { kind: TokKind::Punct, text: (*op).into(), line: 0, col: 0 };
        }
    }
    let c = cur.bump().unwrap_or(' ');
    Token { kind: TokKind::Punct, text: c.to_string(), line: 0, col: 0 }
}
