//! Structured lint diagnostics with human and JSON renderings.

use hisres_util::json::Value;
use std::fmt;

/// How severe a rule violation is. `--deny-all` escalates warnings to
/// errors; only errors affect the process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at a precise source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `panic-free-zone`.
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What the rule forbids and why, phrased for the human fixing it.
    pub message: String,
    /// The trimmed source line containing the violation.
    pub snippet: String,
    /// For graph rules: the offending call chain from an entry point to
    /// the sink (`["hisres::serve::handle_line", "hisres_graph::cmp::neighbors",
    /// ".unwrap()"]`). Empty for token rules.
    pub chain: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.file,
            self.line,
            self.col,
            self.severity.as_str(),
            self.rule,
            self.message
        )?;
        write!(f, "    | {}", self.snippet)?;
        if !self.chain.is_empty() {
            write!(f, "\n    = chain: {}", self.chain.join(" → "))?;
        }
        Ok(())
    }
}

impl Diagnostic {
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("rule".into(), Value::Str(self.rule.into())),
            ("severity".into(), Value::Str(self.severity.as_str().into())),
            ("file".into(), Value::Str(self.file.clone())),
            ("line".into(), Value::Num(self.line as f64)),
            ("col".into(), Value::Num(self.col as f64)),
            ("message".into(), Value::Str(self.message.clone())),
            ("snippet".into(), Value::Str(self.snippet.clone())),
            (
                "chain".into(),
                Value::Arr(self.chain.iter().map(|c| Value::Str(c.clone())).collect()),
            ),
        ])
    }
}
