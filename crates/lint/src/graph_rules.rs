//! Whole-program rules over the [`crate::callgraph`] — the layer that
//! makes the per-file token rules transitive.
//!
//! Three rules live here:
//!
//! * **panic-reachability** — no function transitively reachable from
//!   the serving/durability/distributed entry set may `.unwrap()`,
//!   `.expect()`, invoke a panic/assert macro, or index a slice without
//!   a visible bounds guard. Supersedes the old `panic-free-zone` token
//!   rule: every function *defined* in the zone is an entry, so the old
//!   per-file coverage is the depth-0 case, and helpers in other crates
//!   become visible the moment the zone calls them.
//! * **no-hot-alloc-reachable** — extends PR 9's file-scoped
//!   `no-hot-alloc` to everything reachable from the steady-state
//!   serving kernels (`forward_nograd*`, `score_topk`,
//!   `advance_encoder_state` and the two kernel files).
//! * **durability-order** — intra-procedural, source-order dataflow in
//!   the WAL/fsio/ingest files: a buffer `write_all` must be followed by
//!   `sync_data`/`sync_all` before any ack/reply leaves the function,
//!   and a temp-file write must reach a `rename`. (Source order, not
//!   control flow: the rule is deliberately insensitive to branching —
//!   a sync on only one branch still counts, which keeps it quiet on
//!   fault-injection code at the cost of missing branch-only bugs.)
//!
//! Suppression is per *call site*: a `// lint:allow(<rule>): reason` on
//! an edge's call line cuts the whole subtree behind that edge out of
//! the reachability set (the catch_unwind boundaries in `serve.rs` are
//! the canonical cut points), and one on a sink line silences just that
//! sink. Reasons are mandatory, exactly as for token rules.
//!
//! Every diagnostic carries the shortest offending call chain
//! (`hisres::serve::handle_line → hisres_graph::cmp::neighbors →
//! .unwrap()`) in both the human rendering and the JSON `chain` array.

use crate::callgraph::Graph;
use crate::diag::{Diagnostic, Severity};
use crate::rules::FileCtx;
use std::collections::{BTreeMap, VecDeque};

/// Entry zone of `panic-reachability`: every non-test function defined
/// in these trees must not reach a panic. (The old token rule's include
/// list, verbatim — the zone is unchanged, its closure is new.)
pub const PANIC_ZONE: &[&str] = &[
    "crates/core/src/serve.rs",
    "crates/core/src/ingest.rs",
    "crates/util/src/fsio.rs",
    "crates/util/src/wal.rs",
    "crates/comms/src/",
    "crates/core/src/dist.rs",
];

/// Named entry points of `no-hot-alloc-reachable` (the steady-state
/// serving kernels), wherever they are defined.
pub const HOT_ENTRY_FNS: &[&str] = &[
    "forward_nograd",
    "forward_nograd_into",
    "score_topk",
    "advance_encoder_state",
];

/// Files whose every function is a hot-alloc entry (PR 9's file scope,
/// preserved so nothing the old rule covered escapes).
pub const HOT_ENTRY_FILES: &[&str] =
    &["crates/nn/src/fastpath.rs", "crates/core/src/topk.rs"];

/// Files the `durability-order` rule scans.
pub const DURABILITY_FILES: &[&str] = &[
    "crates/util/src/wal.rs",
    "crates/util/src/fsio.rs",
    "crates/core/src/ingest.rs",
];

/// Macros that panic (the token rule's list plus the assert family —
/// `debug_assert*` compiles out of release serving builds and stays
/// legal).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Call/method names that acknowledge a request back to a client.
const ACK_NAMES: &[&str] = &[
    "reply",
    "send_reply",
    "respond",
    "send_response",
    "write_response",
    "ack",
];

/// Looks up a suppression for `rule` at `file:line`. Returns `true`
/// when the diagnostic must not be emitted (either suppressed with a
/// reason, or replaced by a `lint-allow-syntax` error for a reasonless
/// allow).
fn try_suppress(
    ctxs: &BTreeMap<&str, &FileCtx>,
    file: &str,
    line: u32,
    col: u32,
    rule: &'static str,
    suppressed: &mut usize,
    out: &mut Vec<Diagnostic>,
) -> bool {
    let Some(ctx) = ctxs.get(file) else { return false };
    let Some(a) = ctx
        .allows
        .iter()
        .find(|a| a.line == line && a.rules.iter().any(|r| r == rule))
    else {
        return false;
    };
    a.used.set(true);
    if a.has_reason {
        *suppressed += 1;
    } else {
        out.push(Diagnostic {
            rule: "lint-allow-syntax",
            severity: Severity::Error,
            file: file.into(),
            line,
            col,
            message: format!(
                "lint:allow({rule}) must carry a reason: \
                 `// lint:allow({rule}): <why this is safe>`"
            ),
            snippet: snippet(ctxs, file, line),
            chain: Vec::new(),
        });
    }
    true
}

fn snippet(ctxs: &BTreeMap<&str, &FileCtx>, file: &str, line: u32) -> String {
    ctxs.get(file).map(|c| c.snippet(line)).unwrap_or_default()
}

/// Whether `line` of `file` is test code (cfg(test) item or tests/ tree).
fn in_test(ctxs: &BTreeMap<&str, &FileCtx>, file: &str, line: u32) -> bool {
    ctxs.get(file).map(|c| c.in_test_code(line)).unwrap_or(false)
}

/// Multi-source BFS over call edges with per-edge suppression. Returns
/// the visit parent map `node → (parent node, call line)` (entries map
/// to no parent), which [`chain_to`] turns into shortest call chains.
fn reach(
    graph: &Graph,
    entries: &[usize],
    rule: &'static str,
    ctxs: &BTreeMap<&str, &FileCtx>,
    suppressed: &mut usize,
    out: &mut Vec<Diagnostic>,
) -> BTreeMap<usize, Option<(usize, u32)>> {
    let mut parent: BTreeMap<usize, Option<(usize, u32)>> = BTreeMap::new();
    let mut q = VecDeque::new();
    for &e in entries {
        if parent.insert(e, None).is_none() {
            q.push_back(e);
        }
    }
    while let Some(n) = q.pop_front() {
        let file = graph.fns[n].file.clone();
        for edge in &graph.edges[n] {
            if parent.contains_key(&edge.to) {
                continue;
            }
            // Calls from test code don't extend the production closure.
            if in_test(ctxs, &file, edge.line) {
                continue;
            }
            if try_suppress(ctxs, &file, edge.line, edge.col, rule, suppressed, out) {
                continue;
            }
            parent.insert(edge.to, Some((n, edge.line)));
            q.push_back(edge.to);
        }
    }
    parent
}

/// Renders the entry → … → `node` call chain from a BFS parent map.
fn chain_to(
    graph: &Graph,
    parent: &BTreeMap<usize, Option<(usize, u32)>>,
    node: usize,
) -> Vec<String> {
    let mut rev = vec![graph.fns[node].key.clone()];
    let mut cur = node;
    while let Some(Some((p, _line))) = parent.get(&cur) {
        rev.push(graph.fns[*p].key.clone());
        cur = *p;
    }
    rev.reverse();
    rev
}

/// `panic-reachability`: see module docs.
pub fn check_panic_reachability(
    graph: &Graph,
    ctxs: &BTreeMap<&str, &FileCtx>,
    suppressed: &mut usize,
    out: &mut Vec<Diagnostic>,
) {
    let entries: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            !n.def.is_test
                && PANIC_ZONE.iter().any(|p| n.file.starts_with(p))
                && !in_test(ctxs, &n.file, n.def.line)
        })
        .map(|(i, _)| i)
        .collect();
    let visited = reach(graph, &entries, "panic-reachability", ctxs, suppressed, out);
    for (&ni, _) in &visited {
        let n = &graph.fns[ni];
        if n.def.is_test {
            continue;
        }
        for ev in &n.def.events {
            let sink = match &ev.kind {
                crate::parser::EventKind::Method(m)
                    if m == "unwrap" || m == "expect" =>
                {
                    format!(".{m}()")
                }
                crate::parser::EventKind::MacroUse(m)
                    if PANIC_MACROS.contains(&m.as_str()) =>
                {
                    format!("{m}!")
                }
                crate::parser::EventKind::Index
                    if !ev.guarded && !ev.in_unsafe && !n.def.bounds_aware =>
                {
                    "slice-index-without-guard".to_string()
                }
                _ => continue,
            };
            if in_test(ctxs, &n.file, ev.line) {
                continue;
            }
            if try_suppress(
                ctxs,
                &n.file,
                ev.line,
                ev.col,
                "panic-reachability",
                suppressed,
                out,
            ) {
                continue;
            }
            let mut chain = chain_to(graph, &visited, ni);
            chain.push(sink.clone());
            out.push(Diagnostic {
                rule: "panic-reachability",
                severity: Severity::Error,
                file: n.file.clone(),
                line: ev.line,
                col: ev.col,
                message: format!(
                    "{sink} is reachable from panic-free entry `{}`",
                    chain.first().cloned().unwrap_or_default()
                ),
                snippet: snippet(ctxs, &n.file, ev.line),
                chain,
            });
        }
    }
}

/// `no-hot-alloc-reachable`: see module docs.
pub fn check_hot_alloc_reachable(
    graph: &Graph,
    ctxs: &BTreeMap<&str, &FileCtx>,
    suppressed: &mut usize,
    out: &mut Vec<Diagnostic>,
) {
    let entries: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            !n.def.is_test
                && (HOT_ENTRY_FNS.contains(&n.def.name.as_str())
                    || HOT_ENTRY_FILES.iter().any(|p| n.file.starts_with(p)))
                && !in_test(ctxs, &n.file, n.def.line)
        })
        .map(|(i, _)| i)
        .collect();
    let visited = reach(
        graph,
        &entries,
        "no-hot-alloc-reachable",
        ctxs,
        suppressed,
        out,
    );
    for (&ni, _) in &visited {
        let n = &graph.fns[ni];
        if n.def.is_test {
            continue;
        }
        for ev in &n.def.events {
            // `Vec::new()` is deliberately NOT a sink: it is guaranteed
            // non-allocating — the later `push`/`extend` growth is what
            // allocates, and `vec!`/`with_capacity`/`to_vec` catch the
            // sized-at-birth cases.
            let sink = match &ev.kind {
                crate::parser::EventKind::Call(segs)
                    if segs.len() >= 2
                        && segs[segs.len() - 2] == "Vec"
                        && segs[segs.len() - 1] == "with_capacity" =>
                {
                    "Vec::with_capacity".to_string()
                }
                crate::parser::EventKind::MacroUse(m) if m == "vec" => {
                    "vec!".to_string()
                }
                crate::parser::EventKind::Method(m) if m == "to_vec" => {
                    ".to_vec()".to_string()
                }
                _ => continue,
            };
            if in_test(ctxs, &n.file, ev.line) {
                continue;
            }
            if try_suppress(
                ctxs,
                &n.file,
                ev.line,
                ev.col,
                "no-hot-alloc-reachable",
                suppressed,
                out,
            ) {
                continue;
            }
            let mut chain = chain_to(graph, &visited, ni);
            chain.push(sink.clone());
            out.push(Diagnostic {
                rule: "no-hot-alloc-reachable",
                severity: Severity::Error,
                file: n.file.clone(),
                line: ev.line,
                col: ev.col,
                message: format!(
                    "{sink} allocates on the steady-state path from `{}`",
                    chain.first().cloned().unwrap_or_default()
                ),
                snippet: snippet(ctxs, &n.file, ev.line),
                chain,
            });
        }
    }
}

/// One classified durability operation inside a function body.
enum DurOp {
    Write,
    Sync,
    Rename,
    Ack(String),
}

/// `durability-order`: see module docs.
pub fn check_durability_order(
    graph: &Graph,
    ctxs: &BTreeMap<&str, &FileCtx>,
    suppressed: &mut usize,
    out: &mut Vec<Diagnostic>,
) {
    for n in &graph.fns {
        if n.def.is_test || !DURABILITY_FILES.iter().any(|p| n.file.starts_with(p)) {
            continue;
        }
        if in_test(ctxs, &n.file, n.def.line) {
            continue;
        }
        // Classify events in source order.
        let mut ops: Vec<(DurOp, u32, u32)> = Vec::new();
        for ev in &n.def.events {
            let name = match &ev.kind {
                crate::parser::EventKind::Method(m) => m.as_str(),
                crate::parser::EventKind::Call(segs) => {
                    segs.last().map(String::as_str).unwrap_or("")
                }
                _ => continue,
            };
            let op = match name {
                "write_all" => DurOp::Write,
                "sync_data" | "sync_all" => DurOp::Sync,
                "rename" => DurOp::Rename,
                a if ACK_NAMES.contains(&a) => DurOp::Ack(a.to_string()),
                _ => continue,
            };
            ops.push((op, ev.line, ev.col));
        }
        let has_write = ops.iter().any(|(o, _, _)| matches!(o, DurOp::Write));
        if !has_write {
            continue;
        }
        // Check 1: every write must see a sync before the next ack.
        for (i, (op, wline, _)) in ops.iter().enumerate() {
            if !matches!(op, DurOp::Write) {
                continue;
            }
            for (later, aline, acol) in &ops[i + 1..] {
                match later {
                    DurOp::Sync => break,
                    DurOp::Ack(name) => {
                        if !try_suppress(
                            ctxs,
                            &n.file,
                            *aline,
                            *acol,
                            "durability-order",
                            suppressed,
                            out,
                        ) {
                            let chain = vec![
                                n.key.clone(),
                                format!("write_all@{wline}"),
                                format!("{name}@{aline}"),
                            ];
                            out.push(Diagnostic {
                                rule: "durability-order",
                                severity: Severity::Error,
                                file: n.file.clone(),
                                line: *aline,
                                col: *acol,
                                message: format!(
                                    "ack `{name}` before the write at line {wline} \
                                     is fsynced; call sync_data/sync_all first"
                                ),
                                snippet: snippet(ctxs, &n.file, *aline),
                                chain,
                            });
                        }
                        break;
                    }
                    _ => {}
                }
            }
        }
        // Check 2: temp-file writes must reach a rename.
        if n.def.mentions_tmp {
            let last_write = ops
                .iter()
                .rev()
                .find(|(o, _, _)| matches!(o, DurOp::Write))
                .map(|&(_, l, c)| (l, c));
            let has_rename_after = |line: u32| {
                ops.iter()
                    .any(|(o, l, _)| matches!(o, DurOp::Rename) && *l >= line)
            };
            if let Some((wline, wcol)) = last_write {
                if !has_rename_after(wline)
                    && !try_suppress(
                        ctxs,
                        &n.file,
                        wline,
                        wcol,
                        "durability-order",
                        suppressed,
                        out,
                    )
                {
                    let chain =
                        vec![n.key.clone(), format!("write_all@{wline}"), "∅ rename".into()];
                    out.push(Diagnostic {
                        rule: "durability-order",
                        severity: Severity::Error,
                        file: n.file.clone(),
                        line: wline,
                        col: wcol,
                        message: "temp-file write never reaches fs::rename — the \
                                  visible file can be replaced by a torn copy"
                            .into(),
                        snippet: snippet(ctxs, &n.file, wline),
                        chain,
                    });
                }
            }
        }
    }
}
