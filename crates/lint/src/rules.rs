//! The lint rule set: per-rule configuration and token-stream checks.
//!
//! Every rule walks the token stream produced by [`crate::lexer`], so
//! matches inside comments, strings and raw strings are impossible by
//! construction — the failure mode of the `grep` guards these rules
//! replaced.
//!
//! # Suppression
//!
//! A violation is silenced by a `//` comment **on the offending line**:
//!
//! ```text
//! let t = Instant::now(); // lint:allow(determinism): wall-clock only logged, never in math
//! ```
//!
//! The reason after the colon is mandatory; a reasonless `lint:allow`
//! is itself reported (rule `lint-allow-syntax`). Multiple rules may be
//! listed comma-separated: `lint:allow(float-eq, determinism): …`.
//!
//! # Adding a rule
//!
//! 1. Add a [`RuleConfig`] entry to [`config()`] below (id, severity,
//!    path scope, whether test code is exempt).
//! 2. Implement the check as a `fn(&FileCtx, &RuleConfig, &mut Vec<Diagnostic>)`
//!    over `ctx.code` tokens and dispatch it from [`check_file`].
//! 3. Add a fixture under `tests/fixtures/bad/` and an assertion in
//!    `tests/rules.rs` so the rule's `file:line` output stays pinned.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, TokKind, Token};

/// ---------------------------------------------------------------------
/// Per-rule configuration. Path prefixes are workspace-relative with `/`
/// separators; an empty `include` list means the whole workspace.
/// ---------------------------------------------------------------------
pub struct RuleConfig {
    pub id: &'static str,
    pub severity: Severity,
    pub description: &'static str,
    /// `"token"` rules run per-file over the token stream here;
    /// `"graph"` rules run over the workspace call graph in
    /// [`crate::graph_rules`]. Both share this config for reporting.
    pub kind: &'static str,
    /// Only paths starting with one of these prefixes are checked.
    /// For graph rules this names the *entry zone*, not the scan scope.
    pub include: &'static [&'static str],
    /// Paths starting with one of these prefixes are never checked.
    pub exclude: &'static [&'static str],
    /// Exempt `#[cfg(test)]` modules, `#[test]` fns and `tests/` trees.
    pub skip_test_code: bool,
}

/// Macros that smell like debugging leftovers in library code.
const DEBUG_MACROS: &[&str] = &["dbg", "eprintln", "eprint"];
/// Iteration-order-sensitive std types banned from deterministic modules.
const NONDET_TYPES: &[&str] = &["HashMap", "HashSet"];
/// Library source trees where stray debug output is a bug (the CLI and
/// bench binaries report to stderr on purpose).
const LIBRARY_SRC: &[&str] = &[
    "crates/util/src/",
    "crates/tensor/src/",
    "crates/graph/src/",
    "crates/data/src/",
    "crates/nn/src/",
    "crates/core/src/",
    "crates/baselines/src/",
    "crates/lint/src/",
    "crates/comms/src/",
];
/// Modules on the gradient path: bit-determinism of training trajectories
/// depends on these never observing wall-clock time or hash iteration
/// order.
const GRAD_PATH: &[&str] = &[
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/core/src/model.rs",
    "crates/core/src/trainer.rs",
    "crates/core/src/multistep.rs",
];
/// The shipped rule set. Order here is the order rules run and report.
/// The old `panic-free-zone` and `no-hot-alloc` token rules are
/// superseded by the transitive `panic-reachability` and
/// `no-hot-alloc-reachable` graph rules below.
pub fn config() -> Vec<RuleConfig> {
    vec![
        RuleConfig {
            id: "atomic-writes-only",
            severity: Severity::Error,
            description: "fs::write/File::create are not crash-safe; all \
                          persistent writes go through hisres_util::fsio::atomic_write",
            kind: "token",
            include: &[],
            // fsio *is* the atomic-write helper; the WAL is the one other
            // file allowed to own its durability story (append + fsync is
            // its correctness model — an atomic replace would destroy it).
            exclude: &["crates/util/src/fsio.rs", "crates/util/src/wal.rs"],
            skip_test_code: true,
        },
        RuleConfig {
            id: "pool-only-threading",
            severity: Severity::Error,
            description: "thread::spawn outside the worker pool breaks the \
                          deterministic data-parallel contract",
            kind: "token",
            include: &[],
            exclude: &["crates/util/src/pool.rs"],
            skip_test_code: true,
        },
        RuleConfig {
            id: "determinism",
            severity: Severity::Error,
            description: "Instant::now/SystemTime::now and HashMap/HashSet \
                          are banned on the gradient path (training \
                          trajectories must be bit-reproducible)",
            kind: "token",
            include: GRAD_PATH,
            exclude: &[],
            skip_test_code: true,
        },
        RuleConfig {
            id: "no-debug-leftovers",
            severity: Severity::Warning,
            description: "dbg!/eprintln! in library crates is debug output \
                          that should be removed or routed through a caller",
            kind: "token",
            include: LIBRARY_SRC,
            exclude: &[],
            skip_test_code: true,
        },
        RuleConfig {
            id: "float-eq",
            severity: Severity::Error,
            description: "== / != against a float literal is almost always \
                          an epsilon bug outside tests",
            kind: "token",
            include: &[],
            exclude: &[],
            skip_test_code: true,
        },
        RuleConfig {
            id: "panic-reachability",
            severity: Severity::Error,
            description: "no function transitively reachable from the \
                          serving/durability/distributed entry set may \
                          unwrap/expect, invoke a panic or assert macro, or \
                          index a slice without a bounds guard",
            kind: "graph",
            include: crate::graph_rules::PANIC_ZONE,
            exclude: &[],
            skip_test_code: true,
        },
        RuleConfig {
            id: "no-hot-alloc-reachable",
            severity: Severity::Error,
            description: "Vec::new/vec!/.to_vec() anywhere reachable from \
                          the steady-state serving kernels (forward_nograd*, \
                          score_topk, advance_encoder_state); take buffers \
                          from the Scratch arena",
            kind: "graph",
            include: crate::graph_rules::HOT_ENTRY_FILES,
            exclude: &[],
            skip_test_code: true,
        },
        RuleConfig {
            id: "durability-order",
            severity: Severity::Error,
            description: "in the WAL/fsio/ingest layer a write_all must be \
                          fsynced before any ack leaves the function, and \
                          temp-file writes must reach fs::rename",
            kind: "graph",
            include: crate::graph_rules::DURABILITY_FILES,
            exclude: &[],
            skip_test_code: true,
        },
        RuleConfig {
            id: "unused-suppression",
            severity: Severity::Warning,
            description: "a lint:allow comment whose rule no longer fires on \
                          that line is stale and must be deleted",
            kind: "graph",
            include: &[],
            exclude: &[],
            skip_test_code: false,
        },
    ]
}

/// Everything a rule needs to know about one source file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    /// Raw source lines (for snippets).
    pub lines: Vec<&'a str>,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of code (non-comment) tokens.
    pub code: Vec<usize>,
    /// Whether the whole file is test code (under a `tests/` tree).
    pub file_is_test: bool,
    /// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items
    /// and `#[test]` fns.
    pub test_ranges: Vec<(u32, u32)>,
    /// Per-line suppressions parsed from `// lint:allow(...)` comments.
    pub allows: Vec<Allow>,
}

/// One parsed `lint:allow` comment.
pub struct Allow {
    pub line: u32,
    pub rules: Vec<String>,
    pub has_reason: bool,
    /// Set once a diagnostic on this line was actually silenced.
    pub used: std::cell::Cell<bool>,
}

impl<'a> FileCtx<'a> {
    /// Lexes `source` and precomputes test ranges and suppressions.
    /// Lex errors are surfaced as a `lex-error` diagnostic by the caller.
    pub fn new(path: &'a str, source: &'a str) -> Result<FileCtx<'a>, crate::lexer::LexError> {
        let tokens = lex(source)?;
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_code())
            .map(|(i, _)| i)
            .collect();
        let file_is_test = path.split('/').any(|c| c == "tests" || c == "benches");
        let test_ranges = find_test_ranges(&tokens, &code);
        let allows = find_allows(&tokens);
        Ok(FileCtx {
            path,
            lines: source.lines().collect(),
            tokens,
            code,
            file_is_test,
            test_ranges,
            allows,
        })
    }

    /// The trimmed source line at `line` (1-based), for diagnostics.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Whether `line` is inside test code (`tests/` tree, `#[cfg(test)]`
    /// module, or `#[test]` fn).
    pub fn in_test_code(&self, line: u32) -> bool {
        self.file_is_test || self.test_ranges.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Scans for `#[cfg(test)]` / `#[test]` attributes and records the line
/// span of the item (module, fn, impl, …) they attach to, by matching the
/// braces of the item body.
fn find_test_ranges(tokens: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };
    let mut i = 0usize;
    while i < code.len() {
        if tok(i).text == "#" && i + 1 < code.len() && tok(i + 1).text == "[" {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr = Vec::new();
            while j < code.len() && depth > 0 {
                match tok(j).text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    attr.push(tok(j).text.clone());
                }
                j += 1;
            }
            let is_test_attr = attr.first().map(String::as_str) == Some("test")
                || (attr.first().map(String::as_str) == Some("cfg")
                    && attr.iter().any(|t| t == "test"));
            if is_test_attr {
                // Skip any further attributes, then find the item's body.
                let mut k = j;
                while k + 1 < code.len() && tok(k).text == "#" && tok(k + 1).text == "[" {
                    let mut d = 1usize;
                    k += 2;
                    while k < code.len() && d > 0 {
                        match tok(k).text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let start_line = tok(i).line;
                // Find the opening brace of the item body. A `;` first
                // means a braceless item (e.g. `#[cfg(test)] use …;`) —
                // the range is just the attribute's own lines.
                let mut open = None;
                let mut m = k;
                while m < code.len() {
                    match tok(m).text.as_str() {
                        "{" => {
                            open = Some(m);
                            break;
                        }
                        ";" => break,
                        _ => m += 1,
                    }
                }
                let end_line = match open {
                    Some(o) => {
                        let mut d = 0usize;
                        let mut m = o;
                        let mut end = tok(o).line;
                        while m < code.len() {
                            match tok(m).text.as_str() {
                                "{" => d += 1,
                                "}" => {
                                    d -= 1;
                                    if d == 0 {
                                        end = tok(m).line;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        end
                    }
                    None => tok(if m < code.len() { m } else { code.len() - 1 }).line,
                };
                ranges.push((start_line, end_line));
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Parses `lint:allow(rule-a, rule-b): reason` out of `//` comments.
fn find_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments (`///`, `//!`) describe the syntax; only plain
        // `//` comments carry live suppressions.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(at) = t.text.find("lint:allow(") else {
            continue;
        };
        let rest = &t.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.push(Allow {
                line: t.line,
                rules: Vec::new(),
                has_reason: false,
                used: std::cell::Cell::new(false),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = rest[close + 1..].trim_start();
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow {
            line: t.line,
            rules,
            has_reason,
            used: std::cell::Cell::new(false),
        });
    }
    out
}

fn applies(cfg: &RuleConfig, path: &str) -> bool {
    let included = cfg.include.is_empty() || cfg.include.iter().any(|p| path.starts_with(p));
    let excluded = cfg.exclude.iter().any(|p| path.starts_with(p));
    included && !excluded
}

/// Runs every configured **token** rule over one file (graph rules run
/// in [`crate::graph_rules`] after the call graph is built). Diagnostics
/// suppressed by a well-formed `lint:allow` are counted in `suppressed`
/// instead of returned; malformed allows produce `lint-allow-syntax`
/// diagnostics. Per-rule wall-clock is accumulated into `timings`
/// (milliseconds, keyed by rule id) for the v2 report.
pub fn check_file(
    ctx: &FileCtx,
    rules: &[RuleConfig],
    suppressed: &mut usize,
    timings: &mut std::collections::BTreeMap<&'static str, f64>,
) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    for cfg in rules {
        if cfg.kind != "token" || !applies(cfg, ctx.path) {
            continue;
        }
        let t0 = std::time::Instant::now();
        match cfg.id {
            "atomic-writes-only" => check_atomic_writes(ctx, cfg, &mut raw),
            "pool-only-threading" => check_pool_threading(ctx, cfg, &mut raw),
            "determinism" => check_determinism(ctx, cfg, &mut raw),
            "no-debug-leftovers" => check_debug_leftovers(ctx, cfg, &mut raw),
            "float-eq" => check_float_eq(ctx, cfg, &mut raw),
            other => raw.push(Diagnostic {
                rule: "lint-config",
                severity: Severity::Error,
                file: ctx.path.into(),
                line: 1,
                col: 1,
                message: format!("rule {other:?} has no implementation"),
                snippet: String::new(),
                chain: Vec::new(),
            }),
        }
        *timings.entry(cfg.id).or_insert(0.0) += t0.elapsed().as_secs_f64() * 1e3;
    }
    // Apply suppressions, then report malformed / unused allows.
    let mut out = Vec::new();
    for d in raw {
        let allow = ctx
            .allows
            .iter()
            .find(|a| a.line == d.line && a.rules.iter().any(|r| r == d.rule));
        match allow {
            Some(a) if a.has_reason => {
                a.used.set(true);
                *suppressed += 1;
            }
            Some(a) => {
                a.used.set(true);
                out.push(Diagnostic {
                    rule: "lint-allow-syntax",
                    severity: Severity::Error,
                    file: d.file.clone(),
                    line: d.line,
                    col: d.col,
                    message: format!(
                        "lint:allow({}) must carry a reason: `// lint:allow({}): <why this is safe>`",
                        d.rule, d.rule
                    ),
                    snippet: d.snippet.clone(),
                    chain: Vec::new(),
                });
            }
            None => out.push(d),
        }
    }
    for a in &ctx.allows {
        if a.rules.is_empty() {
            out.push(Diagnostic {
                rule: "lint-allow-syntax",
                severity: Severity::Error,
                file: ctx.path.into(),
                line: a.line,
                col: 1,
                message: "malformed lint:allow — expected `lint:allow(<rule>): <reason>`".into(),
                snippet: ctx.snippet(a.line),
                chain: Vec::new(),
            });
        }
    }
    out
}

/// Shared helper: emit a diagnostic unless the token is in exempt test code.
fn emit(
    ctx: &FileCtx,
    cfg: &RuleConfig,
    tok: &Token,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    if cfg.skip_test_code && ctx.in_test_code(tok.line) {
        return;
    }
    out.push(Diagnostic {
        rule: cfg.id,
        severity: cfg.severity,
        file: ctx.path.into(),
        line: tok.line,
        col: tok.col,
        message,
        snippet: ctx.snippet(tok.line),
        chain: Vec::new(),
    });
}

/// `fs::write` / `File::create` outside the atomic-write helper.
fn check_atomic_writes(ctx: &FileCtx, cfg: &RuleConfig, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.tokens;
    for w in ctx.code.windows(3) {
        let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        if b.text != "::" {
            continue;
        }
        if (a.text == "fs" && c.text == "write") || (a.text == "File" && c.text == "create") {
            emit(
                ctx,
                cfg,
                c,
                format!(
                    "{}::{} is not crash-safe; use hisres_util::fsio::atomic_write",
                    a.text, c.text
                ),
                out,
            );
        }
    }
}

/// `thread::spawn` outside the worker pool.
fn check_pool_threading(ctx: &FileCtx, cfg: &RuleConfig, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.tokens;
    for w in ctx.code.windows(3) {
        let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        if a.text == "thread" && b.text == "::" && c.text == "spawn" {
            emit(
                ctx,
                cfg,
                c,
                "thread::spawn bypasses the deterministic worker pool; use \
                 hisres_util::pool::par_chunks_mut"
                    .into(),
                out,
            );
        }
    }
}

/// Wall-clock reads and hash-ordered collections on the gradient path.
fn check_determinism(ctx: &FileCtx, cfg: &RuleConfig, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.tokens;
    for w in ctx.code.windows(3) {
        let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        if (a.text == "Instant" || a.text == "SystemTime") && b.text == "::" && c.text == "now" {
            emit(
                ctx,
                cfg,
                a,
                format!("{}::now() on the gradient path makes runs irreproducible", a.text),
                out,
            );
        }
    }
    for &i in &ctx.code {
        let t = &toks[i];
        if t.kind == TokKind::Ident && NONDET_TYPES.contains(&t.text.as_str()) {
            emit(
                ctx,
                cfg,
                t,
                format!(
                    "{} iteration order is nondeterministic; use BTreeMap/BTreeSet or a Vec",
                    t.text
                ),
                out,
            );
        }
    }
}

/// `dbg!` / `eprintln!` in library source trees.
fn check_debug_leftovers(ctx: &FileCtx, cfg: &RuleConfig, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.tokens;
    for w in ctx.code.windows(2) {
        let (a, b) = (&toks[w[0]], &toks[w[1]]);
        if a.kind == TokKind::Ident && DEBUG_MACROS.contains(&a.text.as_str()) && b.text == "!" {
            emit(
                ctx,
                cfg,
                a,
                format!("{}! in library code looks like a debugging leftover", a.text),
                out,
            );
        }
    }
}

/// `==` / `!=` where either operand is a float literal.
fn check_float_eq(ctx: &FileCtx, cfg: &RuleConfig, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.tokens;
    for (pos, &i) in ctx.code.iter().enumerate() {
        let t = &toks[i];
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let prev_float = pos > 0 && toks[ctx.code[pos - 1]].is_float();
        let next_float = ctx
            .code
            .get(pos + 1)
            .is_some_and(|&j| toks[j].is_float());
        if prev_float || next_float {
            emit(
                ctx,
                cfg,
                t,
                format!(
                    "`{}` against a float literal; compare with an epsilon or justify exactness",
                    t.text
                ),
                out,
            );
        }
    }
}
