//! Property-based invariants of the neural layers.

use hisres_graph::EdgeList;
use hisres_nn::{CompGcnLayer, ConvGatLayer, GruCell, RgatLayer, SelfGating, TimeEncoding};
use hisres_tensor::{NdArray, ParamStore, Tensor};
use hisres_util::check::{vec as arb_vec, Strategy};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;
use hisres_util::{prop_assert, prop_assert_eq, prop_assume, props};

fn arb_features(rows: usize, cols: usize) -> impl Strategy<Value = NdArray> {
    arb_vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |v| NdArray::from_vec(v, &[rows, cols]))
}

fn arb_edges(nodes: u32, rels: u32, max: usize) -> impl Strategy<Value = EdgeList> {
    arb_vec((0..nodes, 0..rels, 0..nodes), 0..max).prop_map(|v| {
        let mut e = EdgeList::new();
        for (s, r, d) in v {
            e.push(s, r, d);
        }
        e
    })
}

props! {
    cases = 32;

    fn gru_output_stays_in_convex_hull(x in arb_features(4, 6), h in arb_features(4, 6)) {
        // h' = (1-z) h + z tanh(...) with z in (0,1): every output element
        // lies between min(h, -1) and max(h, 1)
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = GruCell::new(&mut store, "g", 6, &mut rng);
        let y = cell.forward(&Tensor::constant(x), &Tensor::constant(h.clone()));
        for (out, &hid) in y.value().as_slice().iter().zip(h.as_slice()) {
            let lo = hid.min(-1.0) - 1e-5;
            let hi = hid.max(1.0) + 1e-5;
            prop_assert!((lo..=hi).contains(out), "out {out} outside [{lo}, {hi}]");
        }
    }

    fn self_gating_is_elementwise_convex(a in arb_features(3, 5), b in arb_features(3, 5)) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let gate = SelfGating::new(&mut store, "sg", 5, &mut rng);
        let y = gate.fuse(&Tensor::constant(a.clone()), &Tensor::constant(b.clone()));
        for ((out, &av), &bv) in y.value().as_slice().iter().zip(a.as_slice()).zip(b.as_slice()) {
            let lo = av.min(bv) - 1e-5;
            let hi = av.max(bv) + 1e-5;
            prop_assert!((lo..=hi).contains(out));
        }
    }

    fn convgat_attention_normalises_on_arbitrary_graphs(
        ents in arb_features(6, 4),
        rels in arb_features(4, 4),
        edges in arb_edges(6, 4, 20),
    ) {
        prop_assume!(!edges.is_empty());
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = ConvGatLayer::new(&mut store, "cg", 4, 3, &mut rng);
        let att = layer.attention(
            &Tensor::constant(ents),
            &Tensor::constant(rels),
            &edges,
        );
        let v = att.value_clone();
        let mut sums = [0.0f32; 6];
        for (i, &d) in edges.dst.iter().enumerate() {
            sums[d as usize] += v.get(i, 0);
        }
        for (d, &s) in sums.iter().enumerate() {
            if edges.dst.contains(&(d as u32)) {
                prop_assert!((s - 1.0).abs() < 1e-4, "destination {d} sums to {s}");
            }
        }
    }

    fn aggregators_always_produce_finite_matching_shapes(
        ents in arb_features(5, 4),
        rels in arb_features(6, 4),
        edges in arb_edges(5, 6, 15),
    ) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let comp = CompGcnLayer::new(&mut store, "c", 4, true, &mut rng);
        let gat = ConvGatLayer::new(&mut store, "g", 4, 3, &mut rng);
        let rgat = RgatLayer::new(&mut store, "r", 4, &mut rng);
        let e = Tensor::constant(ents);
        let r = Tensor::constant(rels);
        let (ce, cr) = comp.forward(&e, &r, &edges);
        prop_assert_eq!(ce.shape(), (5, 4));
        prop_assert_eq!(cr.shape(), (6, 4));
        prop_assert!(!ce.value().has_non_finite());
        let ge = gat.forward(&e, &r, &edges);
        prop_assert_eq!(ge.shape(), (5, 4));
        prop_assert!(!ge.value().has_non_finite());
        let re = rgat.forward(&e, &r, &edges);
        prop_assert_eq!(re.shape(), (5, 4));
        prop_assert!(!re.value().has_non_finite());
    }

    fn time_codes_are_bounded_and_distinct(gap_a in 0u32..400, gap_b in 0u32..400) {
        prop_assume!(gap_a != gap_b);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let te = TimeEncoding::new(&mut store, "t", 16, &mut rng);
        let a = te.encode_gap(gap_a as f32).value_clone();
        let b = te.encode_gap(gap_b as f32).value_clone();
        for &v in a.as_slice() {
            prop_assert!(v.abs() <= 1.0 + 1e-6);
        }
        // random frequencies make collisions measure-zero
        prop_assert!(a != b, "gaps {gap_a} and {gap_b} collided");
    }
}
