//! Composition-based relational graph convolution (paper eq. 3 and 5).
//!
//! One layer computes, for every edge `(s, r, o)` of a snapshot graph,
//! the message `W₁(s + r)` (the "subject + relation" composition operator
//! of CompGCN/RE-GCN), normalises by the destination in-degree, sums into
//! objects, adds the self-loop `W₂ o`, and applies RReLU. Relations are
//! optionally co-updated per layer with `R ← RReLU(W_r R)` (eq. 5) —
//! HisRES's *relation updating*, ablated as `HisRES-w/o-RU`.

use crate::linear::Linear;
use hisres_graph::EdgeList;
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// One CompGCN aggregation layer.
pub struct CompGcnLayer {
    w_msg: Linear,
    w_self: Linear,
    w_rel: Option<Linear>,
}

impl CompGcnLayer {
    /// Registers a layer under `name`; `relation_update` controls whether
    /// eq. 5's relation transform is present.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        relation_update: bool,
        rng: &mut R,
    ) -> Self {
        Self {
            w_msg: Linear::new(store, &format!("{name}.w_msg"), dim, dim, false, rng),
            w_self: Linear::new(store, &format!("{name}.w_self"), dim, dim, false, rng),
            w_rel: relation_update
                .then(|| Linear::new(store, &format!("{name}.w_rel"), dim, dim, false, rng)),
        }
    }

    /// Applies the layer.
    ///
    /// * `entities` — `[num_entities, d]` node features;
    /// * `relations` — `[2·num_relations, d]` relation features (raw +
    ///   inverse ids);
    /// * `edges` — the snapshot's augmented edge list.
    ///
    /// Returns the new `(entities, relations)` matrices; relations pass
    /// through unchanged when relation updating is disabled.
    pub fn forward(
        &self,
        entities: &Tensor,
        relations: &Tensor,
        edges: &EdgeList,
    ) -> (Tensor, Tensor) {
        let self_part = self.w_self.forward(entities);
        let out_e = if edges.is_empty() {
            // isolated snapshot: only the self-loop applies
            self_part.rrelu()
        } else {
            let s = entities.gather_rows(&edges.src);
            let r = relations.gather_rows(&edges.rel);
            let msg = self.w_msg.forward(&s.add(&r));
            let norm = hisres_tensor::NdArray::from_vec(
                edges.inv_in_degree_per_edge(entities.rows()),
                &[edges.len(), 1],
            );
            let msg = msg.mul_col(&Tensor::constant(norm));
            let agg = msg.scatter_add_rows(&edges.dst, entities.rows());
            agg.add(&self_part).rrelu()
        };
        let out_r = match &self.w_rel {
            Some(w) => w.forward(relations).rrelu(),
            None => relations.clone(),
        };
        (out_e, out_r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_tensor::NdArray;
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    fn layer(dim: usize, ru: bool) -> (ParamStore, CompGcnLayer) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let l = CompGcnLayer::new(&mut store, "gcn", dim, ru, &mut rng);
        (store, l)
    }

    fn simple_edges() -> EdgeList {
        let mut e = EdgeList::new();
        e.push(0, 0, 1);
        e.push(2, 1, 1);
        e
    }

    #[test]
    fn shapes_are_preserved() {
        let (_s, l) = layer(4, true);
        let ents = Tensor::constant(NdArray::zeros(3, 4));
        let rels = Tensor::constant(NdArray::zeros(2, 4));
        let (e, r) = l.forward(&ents, &rels, &simple_edges());
        assert_eq!(e.shape(), (3, 4));
        assert_eq!(r.shape(), (2, 4));
    }

    #[test]
    fn empty_edge_list_applies_self_loop_only() {
        let (_s, l) = layer(4, false);
        let ents = Tensor::constant(NdArray::full(2, 4, 1.0));
        let rels = Tensor::constant(NdArray::zeros(1, 4));
        let (e, _r) = l.forward(&ents, &rels, &EdgeList::new());
        // self-loop of a nonzero input through a random W is nonzero
        assert!(e.value().sq_norm() > 0.0);
    }

    #[test]
    fn isolated_nodes_receive_only_self_loop() {
        let (_s, l) = layer(4, false);
        let ents = Tensor::constant(NdArray::full(3, 4, 0.5));
        let rels = Tensor::constant(NdArray::full(2, 4, 0.1));
        let (with_edges, _) = l.forward(&ents, &rels, &simple_edges());
        let (no_edges, _) = l.forward(&ents, &rels, &EdgeList::new());
        // node 2 has no incoming edge, so both runs agree on its row
        assert_eq!(with_edges.value().row(2), no_edges.value().row(2));
        // node 1 has two incoming edges, so the rows differ
        assert_ne!(with_edges.value().row(1), no_edges.value().row(1));
    }

    #[test]
    fn relation_update_changes_relations() {
        let (_s, l) = layer(4, true);
        let ents = Tensor::constant(NdArray::full(3, 4, 0.3));
        let rels = Tensor::constant(NdArray::full(2, 4, 0.7));
        let (_e, r) = l.forward(&ents, &rels, &simple_edges());
        assert_ne!(r.value_clone(), rels.value_clone());
    }

    #[test]
    fn no_relation_update_passes_relations_through() {
        let (_s, l) = layer(4, false);
        let ents = Tensor::constant(NdArray::full(3, 4, 0.3));
        let rels = Tensor::constant(NdArray::full(2, 4, 0.7));
        let (_e, r) = l.forward(&ents, &rels, &simple_edges());
        assert_eq!(r.value_clone(), rels.value_clone());
    }

    #[test]
    fn in_degree_normalisation_averages_parallel_messages() {
        // two identical edges into node 1 must aggregate to the same value
        // as a single such edge (mean, not sum)
        let (_s, l) = layer(3, false);
        let ents = Tensor::constant(NdArray::full(2, 3, 0.4));
        let rels = Tensor::constant(NdArray::full(1, 3, 0.2));
        let mut one = EdgeList::new();
        one.push(0, 0, 1);
        let mut two = EdgeList::new();
        two.push(0, 0, 1);
        two.push(0, 0, 1);
        let (e1, _) = l.forward(&ents, &rels, &one);
        let (e2, _) = l.forward(&ents, &rels, &two);
        for (a, b) in e1.value().row(1).iter().zip(e2.value().row(1)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_flow_through_two_stacked_layers() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let l1 = CompGcnLayer::new(&mut store, "l1", 4, true, &mut rng);
        let l2 = CompGcnLayer::new(&mut store, "l2", 4, true, &mut rng);
        let ents = Tensor::param(NdArray::full(3, 4, 0.2));
        let rels = Tensor::param(NdArray::full(2, 4, 0.1));
        let (e, r) = l1.forward(&ents, &rels, &simple_edges());
        let (e, r) = l2.forward(&e, &r, &simple_edges());
        e.sum_all().add(&r.sum_all()).backward();
        assert!(ents.grad().is_some());
        assert!(rels.grad().is_some());
        for (name, p) in store.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }
}
