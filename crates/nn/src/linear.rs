//! Dense affine layer.

use hisres_tensor::init::{xavier_uniform, zeros};
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// `y = x · W (+ b)` with Xavier-uniform `W` and zero `b`.
pub struct Linear {
    /// Weight `[in_dim, out_dim]`.
    pub w: Tensor,
    /// Optional bias `[1, out_dim]`.
    pub b: Option<Tensor>,
}

impl Linear {
    /// Registers a new layer's parameters under `name` in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let w = store.param(format!("{name}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = bias.then(|| store.param(format!("{name}.b"), zeros(1, out_dim)));
        Self { w, b }
    }

    /// Applies the layer to `[n, in_dim]` input.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let y = x.matmul(&self.w);
        match &self.b {
            Some(b) => y.add_row(b),
            None => y,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_tensor::NdArray;
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 3, 2, true, &mut rng);
        let x = Tensor::constant(NdArray::zeros(5, 3));
        let y = lin.forward(&x);
        assert_eq!(y.shape(), (5, 2));
        // zero input + zero bias = zero output
        assert!(y.value().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn registers_expected_parameters() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Linear::new(&mut store, "enc.fc", 4, 4, true, &mut rng);
        let names: Vec<&str> = store.named_params().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["enc.fc.w", "enc.fc.b"]);
        let _ = Linear::new(&mut store, "enc.nb", 4, 4, false, &mut rng);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn gradient_reaches_weights() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, "l", 2, 2, true, &mut rng);
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, -1.0], &[1, 2]));
        lin.forward(&x).sum_all().backward();
        assert!(lin.w.grad().is_some());
        assert!(lin.b.as_ref().unwrap().grad().is_some());
    }

    #[test]
    fn trains_to_fit_identity() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(&mut store, "l", 2, 2, true, &mut rng);
        let mut opt = hisres_tensor::Adam::new(store.params().cloned().collect(), 0.05);
        let x = NdArray::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, -0.5], &[4, 2]);
        for _ in 0..300 {
            opt.zero_grad();
            let xt = Tensor::constant(x.clone());
            let d = lin.forward(&xt).sub(&xt);
            d.mul(&d).mean_all().backward();
            opt.step();
        }
        let xt = Tensor::constant(x.clone());
        let err = {
            let d = lin.forward(&xt).sub(&xt);
            d.mul(&d).mean_all().value().item()
        };
        assert!(err < 1e-3, "fit error {err}");
    }
}
