//! Periodic time-gap encoding (paper eq. 1–2).
//!
//! For a history snapshot at `t_i` feeding a prediction at `t`, the gap
//! `t - t_i` is mapped to a `d`-dimensional periodic code
//! `Δt = cos(w_t · (t - t_i) + b_t)` and fused with the entity matrix via
//! a `2d → d` linear map: `E' = W₀([E ‖ Δt])`.

use crate::linear::Linear;
use hisres_tensor::init::{uniform, zeros};
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// The cosine time encoder plus its fusion projection.
pub struct TimeEncoding {
    w_t: Tensor,
    b_t: Tensor,
    fuse: Linear,
    dim: usize,
}

impl TimeEncoding {
    /// Registers the frequency/phase vectors and the `2d → d` fusion map.
    pub fn new<R: Rng>(store: &mut ParamStore, name: &str, dim: usize, rng: &mut R) -> Self {
        // frequencies initialised small so long gaps stay informative
        let w_t = store.param(format!("{name}.w_t"), uniform(1, dim, 0.0, 1.0, rng));
        let b_t = store.param(format!("{name}.b_t"), zeros(1, dim));
        let fuse = Linear::new(store, &format!("{name}.fuse"), 2 * dim, dim, false, rng);
        Self { w_t, b_t, fuse, dim }
    }

    /// The `[1, d]` periodic code of a time gap (eq. 1).
    pub fn encode_gap(&self, gap: f32) -> Tensor {
        self.w_t.scale(gap).add(&self.b_t).cos_act()
    }

    /// Fuses the gap code into an entity matrix (eq. 2): every row of
    /// `entities` (`[n, d]`) is concatenated with `Δt` and projected back
    /// to `d`.
    pub fn apply(&self, entities: &Tensor, gap: f32) -> Tensor {
        let n = entities.rows();
        assert_eq!(entities.cols(), self.dim, "entity width");
        let dt = self.encode_gap(gap);
        // broadcast [1, d] to [n, d] by gathering row 0 n times
        let dt_rows = dt.gather_rows(&vec![0; n]);
        let cat = Tensor::concat_cols(&[entities, &dt_rows]);
        self.fuse.forward(&cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_tensor::NdArray;
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    fn enc(dim: usize) -> (ParamStore, TimeEncoding) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let e = TimeEncoding::new(&mut store, "time", dim, &mut rng);
        (store, e)
    }

    #[test]
    fn gap_code_is_bounded_by_one() {
        let (_s, e) = enc(8);
        for gap in [0.0, 1.0, 17.0, 365.0] {
            let c = e.encode_gap(gap);
            for &v in c.value().as_slice() {
                assert!(v.abs() <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn zero_gap_gives_cos_of_bias() {
        let (_s, e) = enc(4);
        let c = e.encode_gap(0.0);
        // bias starts at zero, so cos(0) = 1 everywhere
        for &v in c.value().as_slice() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn different_gaps_give_different_codes() {
        let (_s, e) = enc(8);
        let a = e.encode_gap(1.0).value_clone();
        let b = e.encode_gap(2.0).value_clone();
        assert_ne!(a, b);
    }

    #[test]
    fn apply_preserves_shape() {
        let (_s, e) = enc(4);
        let x = Tensor::constant(NdArray::zeros(6, 4));
        assert_eq!(e.apply(&x, 3.0).shape(), (6, 4));
    }

    #[test]
    fn gradients_reach_frequency_parameters() {
        let (s, e) = enc(4);
        let x = Tensor::constant(NdArray::full(2, 4, 0.5));
        e.apply(&x, 2.0).sum_all().backward();
        for (name, p) in s.named_params() {
            if name.contains("w_t") || name.contains("fuse") {
                assert!(p.grad().is_some(), "no grad for {name}");
            }
        }
    }
}
