//! Allocation-free `no_grad` forward passes over a [`Scratch`] arena.
//!
//! The serving hot path (encoder advance → decoder query → score) rebuilds
//! the same tensor shapes on every call, so each autograd forward spends
//! its time allocating output `NdArray`s it immediately throws away. The
//! `*_nograd*` methods here run the **exact same kernels in the exact same
//! order** as the `Tensor` forwards — every `_into` kernel is either the
//! extracted forward of its autograd twin or shares its scalar function —
//! so the results are `to_bits`-identical (the tests below pin this), but
//! all intermediates come from a caller-owned [`Scratch`] arena: after one
//! warmup call, steady-state forwards perform zero heap allocations.
//!
//! These paths are inference-only by construction: they never touch the
//! autograd tape, so the grad-path determinism contract is untouched.
//! Dropout (a training-only regulariser) is deliberately absent.

use crate::convtranse::ConvTransE;
use crate::gru::GruCell;
use crate::linear::Linear;
use hisres_tensor::{NdArray, Scratch};

impl Linear {
    /// [`Linear::forward`] writing into a caller-owned `[n, out_dim]`
    /// buffer — `x · W` (zero-filled accumulate) then the in-place bias
    /// broadcast, the same element order as the autograd op.
    pub fn forward_nograd_into(&self, x: &NdArray, out: &mut NdArray) {
        x.matmul_into(&self.w.value(), out);
        if let Some(b) = &self.b {
            out.add_row_assign(&b.value());
        }
    }
}

impl GruCell {
    /// [`GruCell::forward`] on raw values over a scratch arena:
    /// `h' = (1 - z) ⊙ h + z ⊙ h̃`, bit-identical to the autograd forward.
    /// The returned buffer belongs to the caller; `give` it back to the
    /// arena when done.
    pub fn forward_nograd(&self, x: &NdArray, h: &NdArray, s: &mut Scratch) -> NdArray {
        assert_eq!(x.shape(), h.shape(), "GRU input/hidden shape mismatch");
        let (n, d) = x.shape();

        // z = σ(x·Wz + bz + h·Uz)
        let mut z = s.take(n, d);
        self.wz.forward_nograd_into(x, &mut z);
        let mut tmp = s.take(n, d);
        self.uz.forward_nograd_into(h, &mut tmp);
        z.zip_assign(&tmp, |a, b| a + b);
        z.sigmoid_inplace();

        // r = σ(x·Wr + br + h·Ur), then reused in place as r ⊙ h
        let mut r = s.take(n, d);
        self.wr.forward_nograd_into(x, &mut r);
        self.ur.forward_nograd_into(h, &mut tmp);
        r.zip_assign(&tmp, |a, b| a + b);
        r.sigmoid_inplace();
        r.zip_assign(h, |a, b| a * b);

        // h̃ = tanh(x·Wh + bh + (r ⊙ h)·Uh)
        let mut ht = s.take(n, d);
        self.wh.forward_nograd_into(x, &mut ht);
        self.uh.forward_nograd_into(&r, &mut tmp);
        ht.zip_assign(&tmp, |a, b| a + b);
        ht.tanh_inplace();

        // h' = ((-z) + 1) ⊙ h + z ⊙ h̃ — the same scalar expression the
        // autograd path builds from neg/add_scalar/mul/add.
        let mut out = s.take(n, d);
        for ((o, (&zv, &htv)), &hv) in out
            .as_mut_slice()
            .iter_mut()
            .zip(z.as_slice().iter().zip(ht.as_slice()))
            .zip(h.as_slice())
        {
            *o = ((-zv) + 1.0) * hv + zv * htv;
        }

        s.give(z);
        s.give(tmp);
        s.give(r);
        s.give(ht);
        out
    }
}

impl ConvTransE {
    /// [`ConvTransE::query`] (eval mode) on raw values over a scratch
    /// arena: `[b, d]` query vectors, bit-identical to the autograd
    /// forward with `training = false`. The returned buffer belongs to
    /// the caller.
    pub fn query_nograd(&self, s_emb: &NdArray, r_emb: &NdArray, s: &mut Scratch) -> NdArray {
        assert_eq!(s_emb.shape(), r_emb.shape(), "subject/relation batch mismatch");
        let (b, d) = s_emb.shape();

        // concat_cols: [b, 2d] channel-major rows [s_row | r_row]
        let mut x = s.take(b, 2 * d);
        for i in 0..b {
            let row = x.row_mut(i);
            row[..d].copy_from_slice(s_emb.row(i));
            row[d..].copy_from_slice(r_emb.row(i));
        }

        let mut fmap = s.take(b, self.channels * d);
        x.conv1d_same_into(&self.kernels.value(), 2, self.kernel_width, &mut fmap);
        fmap.rrelu_inplace();

        let mut q = s.take(b, d);
        self.fc.forward_nograd_into(&fmap, &mut q);
        q.rrelu_inplace();

        s.give(x);
        s.give(fmap);
        q
    }

    /// [`ConvTransE::score`] (eval mode) over a scratch arena: queries
    /// every `(s, r)` pair against `entity_table`, `[b, num_entities]`.
    /// Call inside `no_grad` so the scoring matmul takes the same blocked
    /// dot kernel as the autograd eval path.
    pub fn score_nograd(
        &self,
        s_emb: &NdArray,
        r_emb: &NdArray,
        entity_table: &NdArray,
        s: &mut Scratch,
    ) -> NdArray {
        let q = self.query_nograd(s_emb, r_emb, s);
        let mut out = s.take(q.rows(), entity_table.rows());
        q.matmul_nt_into(entity_table, &mut out);
        s.give(q);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_tensor::{no_grad, ParamStore, Tensor};
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    fn noise(rows: usize, cols: usize, seed: u64) -> NdArray {
        use hisres_util::rng::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        NdArray::from_vec(
            (0..rows * cols).map(|_| rng.gen_range(-1.5f32..1.5)).collect(),
            &[rows, cols],
        )
    }

    fn bits_eq(a: &NdArray, b: &NdArray) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn linear_nograd_into_is_bit_identical() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let lin = Linear::new(&mut store, "l", 5, 3, true, &mut rng);
        let x = noise(4, 5, 1);
        let want = no_grad(|| lin.forward(&Tensor::constant(x.clone())).value_clone());
        let mut out = NdArray::full(4, 3, f32::NAN);
        no_grad(|| lin.forward_nograd_into(&x, &mut out));
        assert!(bits_eq(&out, &want));
    }

    #[test]
    fn gru_nograd_is_bit_identical_and_warm_after_one_call() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let cell = GruCell::new(&mut store, "g", 6, &mut rng);
        let x = noise(9, 6, 2);
        let h = noise(9, 6, 3);
        let want = no_grad(|| {
            cell.forward(&Tensor::constant(x.clone()), &Tensor::constant(h.clone()))
                .value_clone()
        });
        let mut s = Scratch::new();
        let out = no_grad(|| cell.forward_nograd(&x, &h, &mut s));
        assert!(bits_eq(&out, &want));
        s.give(out);
        let warm = s.misses();
        let out2 = no_grad(|| cell.forward_nograd(&x, &h, &mut s));
        assert!(bits_eq(&out2, &want));
        assert_eq!(s.misses(), warm, "steady-state GRU forward must not allocate");
    }

    #[test]
    fn convtranse_nograd_is_bit_identical_and_warm_after_one_call() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(13);
        let dec = ConvTransE::new(&mut store, "dec", 8, 4, 3, 0.5, &mut rng);
        let s_emb = noise(3, 8, 4);
        let r_emb = noise(3, 8, 5);
        let table = noise(17, 8, 6);
        let want = no_grad(|| {
            dec.score(
                &Tensor::constant(s_emb.clone()),
                &Tensor::constant(r_emb.clone()),
                &Tensor::constant(table.clone()),
                false,
                &mut rng,
            )
            .value_clone()
        });
        let mut s = Scratch::new();
        let out = no_grad(|| dec.score_nograd(&s_emb, &r_emb, &table, &mut s));
        assert!(bits_eq(&out, &want));
        s.give(out);
        let warm = s.misses();
        let out2 = no_grad(|| dec.score_nograd(&s_emb, &r_emb, &table, &mut s));
        assert!(bits_eq(&out2, &want));
        assert_eq!(s.misses(), warm, "steady-state decoder score must not allocate");
        s.give(out2);
    }
}
