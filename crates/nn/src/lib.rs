#![warn(missing_docs)]

//! # hisres-nn
//!
//! The neural building blocks of HisRES and its baselines, implemented on
//! top of the `hisres-tensor` autograd layer:
//!
//! * [`Linear`] — dense affine map;
//! * [`Embedding`] — trainable lookup table;
//! * [`GruCell`] — gated recurrent unit for entity/relation evolution
//!   (paper eq. 4, 6, 7);
//! * [`TimeEncoding`] — periodic cosine encoding of the time gap between a
//!   history snapshot and the prediction time (eq. 1–2);
//! * [`CompGcnLayer`] — composition-based relational GCN with optional
//!   relation updating (eq. 3, 5), the aggregator of the multi-granularity
//!   evolutionary encoder;
//! * [`ConvGatLayer`] — the paper's novel convolution-based graph attention
//!   network (eq. 10–11) used by the global relevance encoder;
//! * [`RgatLayer`] — a KBGAT-style attention aggregator, the paper's
//!   ablation comparator (`HisRES-w/-RGAT`);
//! * [`SelfGating`] — the adaptive fusion gate (eq. 8–9 and 13–14);
//! * [`ConvTransE`] — the convolutional decoder (eq. 12).
//!
//! The [`fastpath`] module adds allocation-free `no_grad` forwards for the
//! serving-critical layers ([`Linear`], [`GruCell`], [`ConvTransE`]) over a
//! [`hisres_tensor::Scratch`] arena; they are `to_bits`-identical to the
//! autograd forwards.
//!
//! All layers register their parameters in a caller-supplied
//! [`hisres_tensor::ParamStore`] under hierarchical names, take explicit
//! RNGs for initialisation, and are pure functions of tensors at forward
//! time.

pub mod compgcn;
pub mod convgat;
pub mod convtranse;
pub mod embedding;
pub mod fastpath;
pub mod gating;
pub mod gru;
pub mod linear;
pub mod rgat;
pub mod time;

pub use compgcn::CompGcnLayer;
pub use convgat::ConvGatLayer;
pub use convtranse::ConvTransE;
pub use embedding::Embedding;
pub use gating::SelfGating;
pub use gru::GruCell;
pub use linear::Linear;
pub use rgat::RgatLayer;
pub use time::TimeEncoding;
