//! Gated recurrent unit over batches of feature rows.
//!
//! HisRES evolves the whole entity matrix snapshot-by-snapshot
//! (`E_t = GRU(Ē_{t-1}, E'_{t-1})`, eq. 4) and likewise for relations
//! (eq. 6) and the inter-snapshot granularity (eq. 7). The cell below is
//! the standard GRU applied row-wise: every entity is one batch element.

use crate::linear::Linear;
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// A GRU cell `h' = GRU(x, h)` over `[n, dim]` matrices.
///
/// Fields are crate-visible so [`crate::fastpath`] can run the same six
/// linear maps through the allocation-free `_into` kernels.
pub struct GruCell {
    pub(crate) wz: Linear,
    pub(crate) uz: Linear,
    pub(crate) wr: Linear,
    pub(crate) ur: Linear,
    pub(crate) wh: Linear,
    pub(crate) uh: Linear,
}

impl GruCell {
    /// Registers a cell's six linear maps under `name`.
    pub fn new<R: Rng>(store: &mut ParamStore, name: &str, dim: usize, rng: &mut R) -> Self {
        Self {
            wz: Linear::new(store, &format!("{name}.wz"), dim, dim, true, rng),
            uz: Linear::new(store, &format!("{name}.uz"), dim, dim, false, rng),
            wr: Linear::new(store, &format!("{name}.wr"), dim, dim, true, rng),
            ur: Linear::new(store, &format!("{name}.ur"), dim, dim, false, rng),
            wh: Linear::new(store, &format!("{name}.wh"), dim, dim, true, rng),
            uh: Linear::new(store, &format!("{name}.uh"), dim, dim, false, rng),
        }
    }

    /// One step: `x` is the new input (aggregated snapshot features), `h`
    /// the previous hidden state (evolving embeddings). Shapes `[n, dim]`.
    pub fn forward(&self, x: &Tensor, h: &Tensor) -> Tensor {
        assert_eq!(x.shape(), h.shape(), "GRU input/hidden shape mismatch");
        let z = self.wz.forward(x).add(&self.uz.forward(h)).sigmoid();
        let r = self.wr.forward(x).add(&self.ur.forward(h)).sigmoid();
        let h_tilde = self
            .wh
            .forward(x)
            .add(&self.uh.forward(&r.mul(h)))
            .tanh_act();
        // h' = (1 - z) ⊙ h + z ⊙ h̃
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(h).add(&z.mul(&h_tilde))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_tensor::NdArray;
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    fn cell(dim: usize, seed: u64) -> (ParamStore, GruCell) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = GruCell::new(&mut store, "gru", dim, &mut rng);
        (store, c)
    }

    #[test]
    fn output_shape_matches_input() {
        let (_s, c) = cell(4, 0);
        let x = Tensor::constant(NdArray::zeros(7, 4));
        let h = Tensor::constant(NdArray::zeros(7, 4));
        assert_eq!(c.forward(&x, &h).shape(), (7, 4));
    }

    #[test]
    fn output_is_convex_between_h_and_candidate() {
        // GRU output is a per-element convex mix of h and tanh candidate,
        // so it must stay within [-1, 1] ∪ range of h = [-1, 1] here.
        let (_s, c) = cell(3, 1);
        let x = Tensor::constant(NdArray::from_vec(vec![5.0, -5.0, 0.0], &[1, 3]));
        let h = Tensor::constant(NdArray::from_vec(vec![0.5, -0.5, 0.9], &[1, 3]));
        let y = c.forward(&x, &h);
        for &v in y.value().as_slice() {
            assert!((-1.0..=1.0).contains(&v), "out of range {v}");
        }
    }

    #[test]
    fn registers_ten_parameter_tensors() {
        let (s, _c) = cell(2, 2);
        // 6 weights + 3 biases (wz, wr, wh have bias; u* do not) = 9
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let (s, c) = cell(2, 3);
        let x = Tensor::constant(NdArray::from_vec(vec![0.5, -0.2], &[1, 2]));
        let h = Tensor::constant(NdArray::from_vec(vec![0.1, 0.3], &[1, 2]));
        c.forward(&x, &h).sum_all().backward();
        for (name, p) in s.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    fn can_learn_to_copy_input() {
        // train the cell so h' ≈ x regardless of h
        let (s, c) = cell(2, 4);
        let mut opt = hisres_tensor::Adam::new(s.params().cloned().collect(), 0.03);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..400 {
            opt.zero_grad();
            let xv: Vec<f32> = (0..6).map(|_| rng.gen_range(-0.8..0.8)).collect();
            let hv: Vec<f32> = (0..6).map(|_| rng.gen_range(-0.8..0.8)).collect();
            let x = Tensor::constant(NdArray::from_vec(xv, &[3, 2]));
            let h = Tensor::constant(NdArray::from_vec(hv, &[3, 2]));
            let d = c.forward(&x, &h).sub(&x);
            d.mul(&d).mean_all().backward();
            opt.step();
        }
        let x = Tensor::constant(NdArray::from_vec(vec![0.4, -0.6], &[1, 2]));
        let h = Tensor::constant(NdArray::from_vec(vec![-0.7, 0.2], &[1, 2]));
        let d = c.forward(&x, &h).sub(&x);
        let err = d.mul(&d).mean_all().value().item();
        assert!(err < 0.05, "copy error {err}");
    }
}
