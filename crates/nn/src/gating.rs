//! The self-gating fusion mechanism (paper eq. 8–9 and 13–14).
//!
//! Given two entity matrices `A` and `B` produced by different encoders
//! (or granularities), the gate computes a per-entity, per-dimension
//! weight `Θ = σ(W·A + b)` and fuses `Θ ⊙ A + (1 - Θ) ⊙ B`. Replacing the
//! gate with a plain sum is the `HisRES-w/o-SG` ablation.

use crate::linear::Linear;
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// An adaptive two-way fusion gate.
pub struct SelfGating {
    gate: Linear,
}

impl SelfGating {
    /// Registers the gate's `d → d` map and bias under `name`.
    pub fn new<R: Rng>(store: &mut ParamStore, name: &str, dim: usize, rng: &mut R) -> Self {
        Self { gate: Linear::new(store, &format!("{name}.gate"), dim, dim, true, rng) }
    }

    /// The gate values `Θ = σ(W a + b)` in `[0, 1]`.
    pub fn theta(&self, a: &Tensor) -> Tensor {
        self.gate.forward(a).sigmoid()
    }

    /// Fuses `Θ ⊙ a + (1 - Θ) ⊙ b`.
    pub fn fuse(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "gating operands must match");
        let theta = self.theta(a);
        let inv = theta.neg().add_scalar(1.0);
        theta.mul(a).add(&inv.mul(b))
    }
}

/// The ablation replacement: a plain sum (used by `HisRES-w/o-SG`).
pub fn sum_fusion(a: &Tensor, b: &Tensor) -> Tensor {
    a.add(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_tensor::NdArray;
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    fn gate(dim: usize) -> (ParamStore, SelfGating) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let g = SelfGating::new(&mut store, "sg", dim, &mut rng);
        (store, g)
    }

    #[test]
    fn theta_is_in_unit_interval() {
        let (_s, g) = gate(4);
        let a = Tensor::constant(NdArray::from_vec(vec![10.0, -10.0, 0.0, 3.0], &[1, 4]));
        for &v in g.theta(&a).value().as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn fusion_is_convex_combination() {
        let (_s, g) = gate(3);
        let a = Tensor::constant(NdArray::full(2, 3, 1.0));
        let b = Tensor::constant(NdArray::full(2, 3, -1.0));
        let y = g.fuse(&a, &b);
        for &v in y.value().as_slice() {
            assert!((-1.0..=1.0).contains(&v), "not convex: {v}");
        }
    }

    #[test]
    fn identical_inputs_pass_through() {
        let (_s, g) = gate(3);
        let a = Tensor::constant(NdArray::from_vec(vec![0.2, -0.4, 0.9], &[1, 3]));
        let y = g.fuse(&a, &a);
        for (x, y) in a.value().as_slice().iter().zip(y.value().as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_flow_to_both_inputs_and_gate() {
        let (s, g) = gate(3);
        let a = Tensor::param(NdArray::full(1, 3, 0.5));
        let b = Tensor::param(NdArray::full(1, 3, -0.5));
        g.fuse(&a, &b).sum_all().backward();
        assert!(a.grad().is_some());
        assert!(b.grad().is_some());
        for (name, p) in s.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    fn gate_can_learn_to_select_first_input() {
        let (s, g) = gate(2);
        let mut opt = hisres_tensor::Adam::new(s.params().cloned().collect(), 0.05);
        let a_val = NdArray::from_vec(vec![0.8, -0.3], &[1, 2]);
        let b_val = NdArray::from_vec(vec![-0.9, 0.6], &[1, 2]);
        for _ in 0..300 {
            opt.zero_grad();
            let a = Tensor::constant(a_val.clone());
            let b = Tensor::constant(b_val.clone());
            let d = g.fuse(&a, &b).sub(&a);
            d.mul(&d).mean_all().backward();
            opt.step();
        }
        let a = Tensor::constant(a_val.clone());
        let b = Tensor::constant(b_val);
        let err = {
            let d = g.fuse(&a, &b).sub(&a);
            d.mul(&d).mean_all().value().item()
        };
        assert!(err < 1e-2, "selection error {err}");
    }

    #[test]
    fn sum_fusion_is_plain_addition() {
        let a = Tensor::constant(NdArray::scalar(2.0));
        let b = Tensor::constant(NdArray::scalar(3.0));
        assert_eq!(sum_fusion(&a, &b).value().item(), 5.0);
    }
}
