//! ConvTransE decoder (paper eq. 12; Shang et al., AAAI 2019).
//!
//! Stacks the subject and relation embeddings as a 2-channel length-`d`
//! signal, convolves with `channels` same-padded 1-D kernels, projects the
//! flattened feature map back to `d`, and scores every entity by dot
//! product with the (fused) entity embedding matrix.
//!
//! Deviation from the original: batch normalisation is replaced by plain
//! biases — at the batch sizes used here (tens of queries) batch-norm
//! statistics are too noisy to help, and removing it keeps evaluation
//! deterministic. Dropout is retained.

use crate::linear::Linear;
use hisres_tensor::init::xavier_uniform;
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// The convolutional scoring decoder.
///
/// Fields are crate-visible so [`crate::fastpath`] can run the same
/// forward through the allocation-free `_into` kernels.
pub struct ConvTransE {
    pub(crate) kernels: Tensor,
    pub(crate) channels: usize,
    pub(crate) kernel_width: usize,
    pub(crate) fc: Linear,
    pub(crate) dropout: f32,
}

impl ConvTransE {
    /// Registers a decoder under `name`.
    ///
    /// * `dim` — embedding width;
    /// * `channels` — number of convolution kernels (paper-family default
    ///   50 at `d = 200`; scale proportionally);
    /// * `kernel_width` — odd kernel width (family default 3);
    /// * `dropout` — applied to the convolution feature map during
    ///   training.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        channels: usize,
        kernel_width: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(kernel_width % 2 == 1, "kernel width must be odd");
        Self {
            kernels: store.param(
                format!("{name}.kernels"),
                xavier_uniform(channels, 2 * kernel_width, rng),
            ),
            channels,
            kernel_width,
            fc: Linear::new(store, &format!("{name}.fc"), channels * dim, dim, true, rng),
            dropout,
        }
    }

    /// Produces the query vector for each `(s, r)` pair: `[b, d]`.
    pub fn query<R: Rng>(
        &self,
        s_emb: &Tensor,
        r_emb: &Tensor,
        training: bool,
        rng: &mut R,
    ) -> Tensor {
        assert_eq!(s_emb.shape(), r_emb.shape(), "subject/relation batch mismatch");
        let x = Tensor::concat_cols(&[s_emb, r_emb]); // [b, 2d] channel-major
        let mut h = x
            .conv1d_same(&self.kernels, 2, self.kernel_width)
            .rrelu();
        if training && self.dropout > 0.0 {
            h = h.dropout(self.dropout, rng);
        }
        debug_assert_eq!(h.cols(), self.channels * s_emb.cols());
        self.fc.forward(&h).rrelu()
    }

    /// Scores every candidate entity for each query: `[b, num_entities]`.
    pub fn score<R: Rng>(
        &self,
        s_emb: &Tensor,
        r_emb: &Tensor,
        entity_table: &Tensor,
        training: bool,
        rng: &mut R,
    ) -> Tensor {
        self.query(s_emb, r_emb, training, rng).matmul_nt(entity_table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_tensor::NdArray;
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    fn decoder(dim: usize) -> (ParamStore, ConvTransE) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let d = ConvTransE::new(&mut store, "dec", dim, 4, 3, 0.0, &mut rng);
        (store, d)
    }

    #[test]
    fn score_shape_is_batch_by_entities() {
        let (_s, dec) = decoder(6);
        let mut rng = StdRng::seed_from_u64(1);
        let s = Tensor::constant(NdArray::full(3, 6, 0.1));
        let r = Tensor::constant(NdArray::full(3, 6, 0.2));
        let e = Tensor::constant(NdArray::full(10, 6, 0.3));
        let scores = dec.score(&s, &r, &e, false, &mut rng);
        assert_eq!(scores.shape(), (3, 10));
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let (_s, dec) = decoder(4);
        let s = Tensor::constant(NdArray::full(2, 4, 0.5));
        let r = Tensor::constant(NdArray::full(2, 4, -0.5));
        let e = Tensor::constant(NdArray::full(5, 4, 0.2));
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(999);
        let a = dec.score(&s, &r, &e, false, &mut rng1).value_clone();
        let b = dec.score(&s, &r, &e, false, &mut rng2).value_clone();
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_reach_decoder_parameters() {
        let (store, dec) = decoder(4);
        let mut rng = StdRng::seed_from_u64(2);
        let s = Tensor::constant(NdArray::full(2, 4, 0.3));
        let r = Tensor::constant(NdArray::full(2, 4, 0.1));
        let e = Tensor::param(NdArray::full(6, 4, 0.2));
        dec.score(&s, &r, &e, false, &mut rng)
            .softmax_cross_entropy(&[0, 5])
            .backward();
        for (name, p) in store.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
        assert!(e.grad().is_some());
    }

    #[test]
    fn can_learn_a_toy_link() {
        // one query (s0, r0) whose answer is entity 2 of 4
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let dec = ConvTransE::new(&mut store, "dec", 4, 2, 3, 0.0, &mut rng);
        let s_table = store.param("s", hisres_tensor::init::xavier_normal(1, 4, &mut rng));
        let r_table = store.param("r", hisres_tensor::init::xavier_normal(1, 4, &mut rng));
        let e_table = store.param("e", hisres_tensor::init::xavier_normal(4, 4, &mut rng));
        let mut opt = hisres_tensor::Adam::new(store.params().cloned().collect(), 0.02);
        for _ in 0..200 {
            opt.zero_grad();
            let scores = dec.score(&s_table, &r_table, &e_table, true, &mut rng);
            scores.softmax_cross_entropy(&[2]).backward();
            opt.step();
        }
        let scores = dec.score(&s_table, &r_table, &e_table, false, &mut rng);
        assert_eq!(scores.value().argmax_rows(), vec![2]);
    }
}
