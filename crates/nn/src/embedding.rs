//! Trainable embedding tables.

use hisres_tensor::init::xavier_normal;
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// A `[count, dim]` table of trainable vectors.
pub struct Embedding {
    /// The full table as one parameter.
    pub table: Tensor,
}

impl Embedding {
    /// Registers a Xavier-normal initialised table under `name`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        count: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        Self { table: store.param(name, xavier_normal(count, dim, rng)) }
    }

    /// Looks up rows by id, differentiable back into the table.
    pub fn lookup(&self, ids: &[u32]) -> Tensor {
        self.table.gather_rows(ids)
    }

    /// Number of rows.
    pub fn count(&self) -> usize {
        self.table.rows()
    }

    /// Vector width.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    #[test]
    fn lookup_returns_requested_rows() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(&mut store, "e", 5, 3, &mut rng);
        let x = emb.lookup(&[4, 0]);
        assert_eq!(x.shape(), (2, 3));
        assert_eq!(x.value().row(0), emb.table.value().row(4));
    }

    #[test]
    fn gradient_flows_only_to_used_rows() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(&mut store, "e", 4, 2, &mut rng);
        emb.lookup(&[1, 1]).sum_all().backward();
        let g = emb.table.grad().unwrap();
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(1), &[2.0, 2.0]);
        assert_eq!(g.row(3), &[0.0, 0.0]);
    }
}
