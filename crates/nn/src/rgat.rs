//! RGAT — a KBGAT-style relational graph attention layer.
//!
//! The paper swaps this in for ConvGAT in the `HisRES-w/-RGAT` ablation
//! (Table 4, part 3). Compared to [`crate::ConvGatLayer`] it lacks both
//! the two-stage attention MLP and the convolutional ψ fusion: the logit
//! is a single linear map of `[s ‖ r ‖ o]` and the message is a plain
//! linear map of the concatenation.

use crate::linear::Linear;
use hisres_graph::EdgeList;
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// One RGAT layer.
pub struct RgatLayer {
    att: Linear,
    w_msg: Linear,
    w_self: Linear,
}

impl RgatLayer {
    /// Registers a layer under `name`.
    pub fn new<R: Rng>(store: &mut ParamStore, name: &str, dim: usize, rng: &mut R) -> Self {
        Self {
            att: Linear::new(store, &format!("{name}.att"), 3 * dim, 1, false, rng),
            w_msg: Linear::new(store, &format!("{name}.w_msg"), 3 * dim, dim, false, rng),
            w_self: Linear::new(store, &format!("{name}.w_self"), dim, dim, false, rng),
        }
    }

    /// Applies the layer, returning updated entity features.
    pub fn forward(&self, entities: &Tensor, relations: &Tensor, edges: &EdgeList) -> Tensor {
        let self_part = self.w_self.forward(entities);
        if edges.is_empty() {
            return self_part.rrelu();
        }
        let s = entities.gather_rows(&edges.src);
        let r = relations.gather_rows(&edges.rel);
        let o = entities.gather_rows(&edges.dst);
        let feat = Tensor::concat_cols(&[&s, &r, &o]);
        let theta = self
            .att
            .forward(&feat)
            .leaky_relu(0.2)
            .segment_softmax(&edges.dst, entities.rows());
        let msg = self.w_msg.forward(&feat).mul_col(&theta);
        let agg = msg.scatter_add_rows(&edges.dst, entities.rows());
        agg.add(&self_part).rrelu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    fn setup() -> (ParamStore, RgatLayer, Tensor, Tensor, EdgeList) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let l = RgatLayer::new(&mut store, "rgat", 4, &mut rng);
        let ents = Tensor::param(hisres_tensor::init::xavier_normal(3, 4, &mut rng));
        let rels = Tensor::param(hisres_tensor::init::xavier_normal(2, 4, &mut rng));
        let mut e = EdgeList::new();
        e.push(0, 0, 2);
        e.push(1, 1, 2);
        (store, l, ents, rels, e)
    }

    #[test]
    fn forward_shape() {
        let (_s, l, ents, rels, e) = setup();
        assert_eq!(l.forward(&ents, &rels, &e).shape(), (3, 4));
    }

    #[test]
    fn gradients_reach_parameters() {
        let (s, l, ents, rels, e) = setup();
        l.forward(&ents, &rels, &e).sum_all().backward();
        for (name, p) in s.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    fn empty_graph_self_transform_only() {
        let (_s, l, ents, rels, _e) = setup();
        let y = l.forward(&ents, &rels, &EdgeList::new());
        assert_eq!(y.shape(), (3, 4));
    }

    #[test]
    fn has_fewer_parameters_than_convgat() {
        let mut s1 = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RgatLayer::new(&mut s1, "a", 8, &mut rng);
        let mut s2 = ParamStore::new();
        let _ = crate::ConvGatLayer::new(&mut s2, "b", 8, 3, &mut rng);
        assert!(s1.num_scalars() < s2.num_scalars());
    }
}
