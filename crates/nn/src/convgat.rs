//! ConvGAT — the paper's convolution-based graph attention network
//! (eq. 10–11), the aggregator of the global relevance encoder.
//!
//! For every edge `(s, r, o)` of the globally relevant graph:
//!
//! 1. attention logit `W₄ · LeakyReLU(W₅ [s ‖ r ‖ o])` (eq. 10 numerator),
//! 2. `θ = segment_softmax(logits by destination)` (eq. 10),
//! 3. message `ψ(s + r)` where `ψ` is a same-padded 1-D convolution that
//!    mixes neighbouring embedding coordinates — the "conv" in ConvGAT,
//! 4. output `RReLU( Σ θ · W₆ ψ(s + r) + W₇ o )` (eq. 11).
//!
//! Relations are *not* updated here (the paper's design choice, §3.4.2).

use crate::linear::Linear;
use hisres_graph::EdgeList;
use hisres_tensor::init::xavier_uniform;
use hisres_tensor::{ParamStore, Tensor};
use hisres_util::rng::Rng;

/// One ConvGAT layer.
pub struct ConvGatLayer {
    w5: Linear,
    w4: Linear,
    psi: Tensor,
    psi_k: usize,
    w6: Linear,
    w7: Linear,
}

impl ConvGatLayer {
    /// Registers a layer under `name`. `conv_kernel` is the width of the
    /// ψ convolution (odd; the paper-scale default is 3).
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        conv_kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(conv_kernel % 2 == 1, "conv kernel must be odd");
        Self {
            w5: Linear::new(store, &format!("{name}.w5"), 3 * dim, 3 * dim, false, rng),
            w4: Linear::new(store, &format!("{name}.w4"), 3 * dim, 1, false, rng),
            psi: store.param(format!("{name}.psi"), xavier_uniform(1, conv_kernel, rng)),
            psi_k: conv_kernel,
            w6: Linear::new(store, &format!("{name}.w6"), dim, dim, false, rng),
            w7: Linear::new(store, &format!("{name}.w7"), dim, dim, false, rng),
        }
    }

    /// Per-edge attention coefficients (eq. 10), exposed for inspection and
    /// the explanation API. Returns `[num_edges, 1]` weights that sum to 1
    /// within each destination group.
    pub fn attention(&self, entities: &Tensor, relations: &Tensor, edges: &EdgeList) -> Tensor {
        let s = entities.gather_rows(&edges.src);
        let r = relations.gather_rows(&edges.rel);
        let o = entities.gather_rows(&edges.dst);
        let feat = Tensor::concat_cols(&[&s, &r, &o]);
        let logits = self.w4.forward(&self.w5.forward(&feat).leaky_relu(0.2));
        logits.segment_softmax(&edges.dst, entities.rows())
    }

    /// Applies the layer, returning updated entity features.
    pub fn forward(&self, entities: &Tensor, relations: &Tensor, edges: &EdgeList) -> Tensor {
        let self_part = self.w7.forward(entities);
        if edges.is_empty() {
            return self_part.rrelu();
        }
        let theta = self.attention(entities, relations, edges);
        let s = entities.gather_rows(&edges.src);
        let r = relations.gather_rows(&edges.rel);
        let fused = s.add(&r).conv1d_same(&self.psi, 1, self.psi_k);
        let msg = self.w6.forward(&fused).mul_col(&theta);
        let agg = msg.scatter_add_rows(&edges.dst, entities.rows());
        agg.add(&self_part).rrelu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_tensor::NdArray;
    use hisres_util::rng::rngs::StdRng;
    use hisres_util::rng::SeedableRng;

    fn layer(dim: usize) -> (ParamStore, ConvGatLayer) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let l = ConvGatLayer::new(&mut store, "gat", dim, 3, &mut rng);
        (store, l)
    }

    fn edges() -> EdgeList {
        let mut e = EdgeList::new();
        e.push(0, 0, 2);
        e.push(1, 1, 2);
        e.push(2, 0, 0);
        e
    }

    #[test]
    fn forward_preserves_shape() {
        let (_s, l) = layer(4);
        let ents = Tensor::constant(NdArray::full(3, 4, 0.2));
        let rels = Tensor::constant(NdArray::full(2, 4, 0.1));
        assert_eq!(l.forward(&ents, &rels, &edges()).shape(), (3, 4));
    }

    #[test]
    fn attention_normalises_per_destination() {
        let (_s, l) = layer(4);
        let mut rng = StdRng::seed_from_u64(3);
        let ents = Tensor::constant(hisres_tensor::init::xavier_normal(3, 4, &mut rng));
        let rels = Tensor::constant(hisres_tensor::init::xavier_normal(2, 4, &mut rng));
        let att = l.attention(&ents, &rels, &edges());
        let v = att.value_clone();
        // edges 0 and 1 share destination 2
        assert!((v.get(0, 0) + v.get(1, 0) - 1.0).abs() < 1e-5);
        // edge 2 alone targets node 0
        assert!((v.get(2, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn distinct_sources_get_distinct_attention() {
        let (_s, l) = layer(4);
        let mut rng = StdRng::seed_from_u64(9);
        let ents = Tensor::constant(hisres_tensor::init::xavier_normal(3, 4, &mut rng));
        let rels = Tensor::constant(hisres_tensor::init::xavier_normal(2, 4, &mut rng));
        let att = l.attention(&ents, &rels, &edges());
        assert_ne!(att.value().get(0, 0), att.value().get(1, 0));
    }

    #[test]
    fn empty_graph_reduces_to_self_transform() {
        let (_s, l) = layer(4);
        let ents = Tensor::constant(NdArray::full(2, 4, 0.5));
        let rels = Tensor::constant(NdArray::zeros(1, 4));
        let y = l.forward(&ents, &rels, &EdgeList::new());
        assert_eq!(y.shape(), (2, 4));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let (s, l) = layer(4);
        let mut rng = StdRng::seed_from_u64(4);
        let ents = Tensor::param(hisres_tensor::init::xavier_normal(3, 4, &mut rng));
        let rels = Tensor::param(hisres_tensor::init::xavier_normal(2, 4, &mut rng));
        l.forward(&ents, &rels, &edges()).sum_all().backward();
        for (name, p) in s.named_params() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
        assert!(ents.grad().is_some());
        assert!(rels.grad().is_some());
    }

    #[test]
    fn attention_can_learn_to_prefer_informative_edge() {
        // Node 2 receives from node 0 and node 1; target: node 2's output
        // should equal W6ψ(node0-message). Training should push attention
        // toward edge 0. We verify the loss decreases and attention moves.
        let (s, l) = layer(4);
        let mut rng = StdRng::seed_from_u64(8);
        let ents_init = hisres_tensor::init::xavier_normal(3, 4, &mut rng);
        let rels_init = hisres_tensor::init::xavier_normal(2, 4, &mut rng);
        let target = NdArray::full(1, 4, 0.7);
        let mut opt = hisres_tensor::Adam::new(s.params().cloned().collect(), 0.02);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..150 {
            opt.zero_grad();
            let ents = Tensor::constant(ents_init.clone());
            let rels = Tensor::constant(rels_init.clone());
            let out = l.forward(&ents, &rels, &edges());
            let row2 = out.gather_rows(&[2]);
            let d = row2.sub(&Tensor::constant(target.clone()));
            let loss = d.mul(&d).mean_all();
            if first_loss.is_none() {
                first_loss = Some(loss.value().item());
            }
            last_loss = loss.value().item();
            loss.backward();
            opt.step();
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss {first_loss:?} -> {last_loss}"
        );
    }
}
