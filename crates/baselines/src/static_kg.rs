//! Static knowledge-graph embedding baselines (Table 3, first block):
//! DistMult, ComplEx, RotatE, ConvE-lite, ConvTransE.
//!
//! These models ignore timestamps entirely — they are trained on the bag
//! of training triples and score `(s, r, ?)` identically at every `t`.
//! The paper uses them to demonstrate the value of temporal modelling.
//!
//! ConvE is implemented as a 1-D-convolution variant ("ConvE-lite"): the
//! original's 2-D embedding reshape degenerates at the small embedding
//! widths used on CPU, so both convolutional decoders share the 1-D
//! machinery and differ in activation/width hyper-parameters (documented
//! substitution; at paper scale the distinction matters more).

use crate::util::{train_static, FitConfig};
use hisres::{ExtrapolationModel, HistoryCtx};
use hisres_data::DatasetSplits;
use hisres_nn::{ConvTransE, Embedding, Linear};
use hisres_tensor::{no_grad, NdArray, ParamStore, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::{Rng, SeedableRng};

/// Which scoring function a [`StaticKg`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaticKind {
    /// Bilinear diagonal: `⟨s ⊙ r, o⟩`.
    DistMult,
    /// Complex bilinear: `Re⟨s, r, ō⟩`.
    ComplEx,
    /// Rotation in complex space: `-‖s ∘ e^{iθ_r} - o‖²`.
    RotatE,
    /// 1-D convolutional decoder with ReLU ("ConvE-lite").
    ConvE,
    /// 1-D convolutional decoder (ConvTransE).
    ConvTransE,
}

impl StaticKind {
    /// Table 3 row label.
    pub fn label(self) -> &'static str {
        match self {
            StaticKind::DistMult => "DistMult",
            StaticKind::ComplEx => "ComplEx",
            StaticKind::RotatE => "RotatE",
            StaticKind::ConvE => "ConvE",
            StaticKind::ConvTransE => "ConvTransE",
        }
    }
}

/// A static KG embedding model.
pub struct StaticKg {
    kind: StaticKind,
    /// All trainable parameters.
    pub store: ParamStore,
    ent: Embedding,
    rel: Embedding,
    conv: Option<ConvTransE>,
    conve_fc: Option<Linear>,
    dim: usize,
}

impl StaticKg {
    /// Builds a static model with embedding width `dim` (even; ComplEx and
    /// RotatE split it into real/imaginary halves).
    pub fn new(kind: StaticKind, num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        assert!(dim.is_multiple_of(2), "dim must be even for complex-space models");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ent = Embedding::new(&mut store, "ent", num_entities, dim, &mut rng);
        let rel = Embedding::new(&mut store, "rel", 2 * num_relations, dim, &mut rng);
        let (conv, conve_fc) = match kind {
            StaticKind::ConvTransE => (
                Some(ConvTransE::new(&mut store, "dec", dim, 6, 3, 0.2, &mut rng)),
                None,
            ),
            StaticKind::ConvE => (
                Some(ConvTransE::new(&mut store, "dec", dim, 4, 5, 0.2, &mut rng)),
                Some(Linear::new(&mut store, "proj", dim, dim, true, &mut rng)),
            ),
            _ => (None, None),
        };
        Self { kind, store, ent, rel, conv, conve_fc, dim }
    }

    /// Scores a query batch against all entities: `[q, num_entities]`.
    pub fn score_batch<R: Rng>(&self, queries: &[(u32, u32)], training: bool, rng: &mut R) -> Tensor {
        let s_ids: Vec<u32> = queries.iter().map(|&(s, _)| s).collect();
        let r_ids: Vec<u32> = queries.iter().map(|&(_, r)| r).collect();
        let s = self.ent.lookup(&s_ids);
        let r = self.rel.lookup(&r_ids);
        let e = &self.ent.table;
        let half = self.dim / 2;
        match self.kind {
            StaticKind::DistMult => s.mul(&r).matmul_nt(e),
            StaticKind::ComplEx => {
                let (a, b) = (s.slice_cols(0, half), s.slice_cols(half, self.dim));
                let (c, d) = (r.slice_cols(0, half), r.slice_cols(half, self.dim));
                let q_re = a.mul(&c).sub(&b.mul(&d));
                let q_im = a.mul(&d).add(&b.mul(&c));
                Tensor::concat_cols(&[&q_re, &q_im]).matmul_nt(e)
            }
            StaticKind::RotatE => {
                let (a, b) = (s.slice_cols(0, half), s.slice_cols(half, self.dim));
                let theta = r.slice_cols(0, half).scale(std::f32::consts::PI);
                let cos = theta.cos_act();
                // sin(x) = cos(x - π/2)
                let sin = theta.add_scalar(-std::f32::consts::FRAC_PI_2).cos_act();
                let q_re = a.mul(&cos).sub(&b.mul(&sin));
                let q_im = a.mul(&sin).add(&b.mul(&cos));
                let q = Tensor::concat_cols(&[&q_re, &q_im]);
                // -‖q - o‖² = 2 q·o - ‖o‖² - ‖q‖²; the ‖q‖² term is
                // constant per row and drops out of softmax/ranking.
                let dots = q.matmul_nt(e).scale(2.0);
                let ones = Tensor::constant(NdArray::full(1, self.dim, 1.0));
                let o_norms = ones.matmul_nt(&e.mul(e)); // [1, N]
                dots.add_row(&o_norms.neg())
            }
            StaticKind::ConvTransE => {
                self.conv.as_ref().unwrap().score(&s, &r, e, training, rng)
            }
            StaticKind::ConvE => {
                let q = self.conv.as_ref().unwrap().query(&s, &r, training, rng);
                self.conve_fc.as_ref().unwrap().forward(&q).relu().matmul_nt(e)
            }
        }
    }

    /// Fits the model with minibatch cross-entropy over the training bag.
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        // split-borrow: score_batch only reads the layers, not the store
        let this: &StaticKg = self;
        train_static(&this.store, data, fit, 64, |q, training, rng| {
            this.score_batch(q, training, rng)
        });
    }
}

impl ExtrapolationModel for StaticKg {
    fn name(&self) -> String {
        self.kind.label().to_owned()
    }

    fn score(&self, _ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        let mut rng = StdRng::seed_from_u64(0);
        no_grad(|| self.score_batch(queries, false, &mut rng).value_clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_graph::{Quad, Tkg};

    fn tiny() -> DatasetSplits {
        // deterministic rule: o = (s + 1) mod 5 under relation 0
        let quads: Vec<Quad> = (0..40).map(|t| Quad::new(t % 5, 0, (t + 1) % 5, t)).collect();
        DatasetSplits::from_tkg("t", "1 step", &Tkg::new(5, 1, quads))
    }

    #[test]
    fn all_kinds_produce_correct_shapes() {
        for kind in [
            StaticKind::DistMult,
            StaticKind::ComplEx,
            StaticKind::RotatE,
            StaticKind::ConvE,
            StaticKind::ConvTransE,
        ] {
            let m = StaticKg::new(kind, 5, 1, 8, 3);
            let mut rng = StdRng::seed_from_u64(0);
            let s = m.score_batch(&[(0, 0), (1, 1)], false, &mut rng);
            assert_eq!(s.shape(), (2, 5), "{kind:?}");
            assert!(!s.value().has_non_finite(), "{kind:?}");
        }
    }

    #[test]
    fn rotate_scores_match_explicit_distance() {
        let m = StaticKg::new(StaticKind::RotatE, 3, 1, 4, 7);
        let mut rng = StdRng::seed_from_u64(0);
        let scores = m.score_batch(&[(0, 0)], false, &mut rng).value_clone();
        // recompute -(‖q-o‖²) + ‖q‖² manually for entity 1
        let e = m.ent.table.value_clone();
        let r = m.rel.table.value_clone();
        let half = 2;
        let (a, b) = (&e.row(0)[..half], &e.row(0)[half..]);
        let theta: Vec<f32> = r.row(0)[..half].iter().map(|v| v * std::f32::consts::PI).collect();
        let q: Vec<f32> = (0..half)
            .map(|i| a[i] * theta[i].cos() - b[i] * theta[i].sin())
            .chain((0..half).map(|i| a[i] * theta[i].sin() + b[i] * theta[i].cos()))
            .collect();
        let o = e.row(1);
        let dist2: f32 = q.iter().zip(o).map(|(x, y)| (x - y) * (x - y)).sum();
        let qn: f32 = q.iter().map(|x| x * x).sum();
        let expected = -dist2 + qn;
        assert!((scores.get(0, 1) - expected).abs() < 1e-4, "{} vs {expected}", scores.get(0, 1));
    }

    #[test]
    fn distmult_learns_rule_up_to_its_symmetry() {
        // DistMult is symmetric (score(s,r,o) = score(o,r,s)), so on the
        // antisymmetric cycle s -> s+1 it cannot separate s+1 from s-1:
        // the gold answer must rank in the top 2, not necessarily first.
        let data = tiny();
        let mut m = StaticKg::new(StaticKind::DistMult, 5, 1, 8, 1);
        m.fit(&data, &FitConfig { epochs: 60, lr: 0.05, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(0);
        let scores = m.score_batch(&[(0, 0), (1, 0), (2, 0)], false, &mut rng);
        let v = scores.value_clone();
        for (row, gold) in [(0usize, 1usize), (1, 2), (2, 3)] {
            let gold_score = v.get(row, gold);
            let higher = v.row(row).iter().filter(|&&s| s > gold_score).count();
            assert!(higher <= 1, "row {row}: gold rank {}", higher + 1);
        }
    }

    #[test]
    fn complex_learns_deterministic_rule() {
        let data = tiny();
        let mut m = StaticKg::new(StaticKind::ComplEx, 5, 1, 8, 2);
        m.fit(&data, &FitConfig { epochs: 60, lr: 0.05, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(0);
        let scores = m.score_batch(&[(3, 0)], false, &mut rng);
        assert_eq!(scores.value().argmax_rows(), vec![4]);
    }

    #[test]
    fn eval_interface_is_deterministic() {
        let m = StaticKg::new(StaticKind::ConvTransE, 5, 1, 8, 4);
        let snaps: Vec<hisres_graph::Snapshot> = vec![];
        let g = hisres_graph::GlobalHistoryIndex::new();
        let ctx = HistoryCtx { snapshots: &snaps, t: 9, global: &g, num_entities: 5, num_relations: 1 };
        let a = m.score(&ctx, &[(0, 0)]);
        let b = m.score(&ctx, &[(0, 0)]);
        assert_eq!(a, b);
    }
}
