//! RE-NET-lite (Jin et al., EMNLP 2020): neighbourhood aggregation + RNN.
//!
//! RE-NET models each entity's history with a recurrent unit fed by an
//! aggregate of its per-snapshot neighbourhood. The "-lite" version keeps
//! that shape at the entity-matrix level: for each of the `l` most recent
//! snapshots the incoming messages `s + r` are mean-aggregated
//! (parameter-free, unlike CompGCN's learned maps), the matrix evolves
//! through a GRU, and a linear decoder scores `[h_s ‖ r]` against the
//! entity table. The original's per-query subgraph sampling and
//! multi-step generative rollout are omitted (single-step protocol).

use crate::util::{train_sequential, FitConfig};
use hisres::{ExtrapolationModel, HistoryCtx};
use hisres_data::DatasetSplits;
use hisres_graph::{EdgeList, Snapshot};
use hisres_nn::{Embedding, GruCell, Linear};
use hisres_tensor::{no_grad, NdArray, ParamStore, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;

/// The RE-NET-lite model.
pub struct ReNet {
    /// All trainable parameters.
    pub store: ParamStore,
    ent: Embedding,
    rel: Embedding,
    gru: GruCell,
    dec: Linear,
    /// History window length.
    pub history_len: usize,
    num_relations: usize,
}

impl ReNet {
    /// Builds the model.
    pub fn new(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        history_len: usize,
        seed: u64,
    ) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ent = Embedding::new(&mut store, "ent", num_entities, dim, &mut rng);
        let rel = Embedding::new(&mut store, "rel", 2 * num_relations, dim, &mut rng);
        let gru = GruCell::new(&mut store, "gru", dim, &mut rng);
        let dec = Linear::new(&mut store, "dec", 2 * dim, dim, true, &mut rng);
        Self { store, ent, rel, gru, dec, history_len, num_relations }
    }

    /// Mean neighbourhood aggregation of one snapshot (parameter-free).
    fn aggregate(&self, h: &Tensor, snap: &Snapshot) -> Tensor {
        let edges = EdgeList::from_snapshot(snap, self.num_relations);
        if edges.is_empty() {
            return Tensor::constant(NdArray::zeros(h.rows(), h.cols()));
        }
        let msg = h.gather_rows(&edges.src).add(&self.rel.table.gather_rows(&edges.rel));
        let norm = NdArray::from_vec(edges.inv_in_degree_per_edge(h.rows()), &[edges.len(), 1]);
        msg.mul_col(&Tensor::constant(norm))
            .scatter_add_rows(&edges.dst, h.rows())
    }

    /// Evolves the entity matrix over the history window.
    pub fn encode(&self, history: &[Snapshot]) -> Tensor {
        let start = history.len().saturating_sub(self.history_len);
        let mut h = self.ent.table.clone();
        for snap in &history[start..] {
            let agg = self.aggregate(&h, snap);
            h = self.gru.forward(&agg, &h);
        }
        h
    }

    /// Scores a query batch: `[q, num_entities]`.
    pub fn score_batch(&self, h: &Tensor, queries: &[(u32, u32)]) -> Tensor {
        let s_ids: Vec<u32> = queries.iter().map(|&(s, _)| s).collect();
        let r_ids: Vec<u32> = queries.iter().map(|&(_, r)| r).collect();
        let feat = Tensor::concat_cols(&[&h.gather_rows(&s_ids), &self.rel.lookup(&r_ids)]);
        self.dec.forward(&feat).tanh_act().matmul_nt(h)
    }

    /// Fits the model sequentially.
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        let nr = self.num_relations as u32;
        let this: &ReNet = self;
        train_sequential(&this.store, data, fit, |hist, target, _global, _rng| {
            let h = this.encode(hist);
            let mut queries = Vec::new();
            let mut targets = Vec::new();
            for &(s, r, o) in &target.triples {
                queries.push((s, r));
                targets.push(o);
                queries.push((o, r + nr));
                targets.push(s);
            }
            this.score_batch(&h, &queries).softmax_cross_entropy(&targets)
        });
    }
}

impl ExtrapolationModel for ReNet {
    fn name(&self) -> String {
        "RE-NET".into()
    }

    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        no_grad(|| {
            let h = self.encode(ctx.snapshots);
            self.score_batch(&h, queries).value_clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_graph::{Quad, Tkg};

    #[test]
    fn encode_without_history_returns_base_table() {
        let m = ReNet::new(5, 1, 8, 3, 0);
        let h = m.encode(&[]);
        assert_eq!(h.value_clone(), m.ent.table.value_clone());
    }

    #[test]
    fn encode_uses_only_last_l_snapshots() {
        let m = ReNet::new(5, 1, 8, 2, 1);
        let mk = |t| Snapshot { t, triples: vec![(0, 0, 1)] };
        let long: Vec<Snapshot> = (0..6).map(mk).collect();
        let short: Vec<Snapshot> = (4..6).map(mk).collect();
        let a = m.encode(&long).value_clone();
        let b = m.encode(&short).value_clone();
        assert_eq!(a, b);
    }

    #[test]
    fn learns_recent_repeat_pattern() {
        // every event repeats next step: (s,0,s+3) at all t
        let mut quads = Vec::new();
        for t in 0..40u32 {
            for s in 0..3u32 {
                quads.push(Quad::new(s, 0, s + 3, t));
            }
        }
        let data = DatasetSplits::from_tkg("r", "1 step", &Tkg::new(6, 1, quads));
        let mut m = ReNet::new(6, 1, 8, 3, 2);
        m.fit(&data, &FitConfig { epochs: 10, lr: 0.02, ..Default::default() });
        let snaps = hisres_graph::snapshot::partition(&data.train);
        let h = m.encode(&snaps);
        let s = m.score_batch(&h, &[(0, 0), (1, 0)]);
        assert_eq!(s.value().argmax_rows(), vec![3, 4]);
    }
}
