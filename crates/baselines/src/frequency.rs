//! Precomputed frequency fallback scorer for degraded serving.
//!
//! When a serving deadline cannot cover the full HisRES encoder, the
//! server answers from this scorer instead: a historical-copy boost over
//! the query's `(s, r)` history (recency-weighted, exactly the global
//! index the model itself consults) on top of a global object-frequency
//! prior. Everything is precomputed at load time, so a query costs one
//! index lookup plus a vector write — microseconds, independent of model
//! size.

use hisres::serve::ServeScorer;
use hisres_graph::{GlobalHistoryIndex, Quad};
use hisres_tensor::NdArray;

/// Score added to every object seen with the query's `(s, r)` pair, on
/// top of which recency discriminates. Large enough that any historical
/// object outranks every frequency-only candidate.
const COPY_BOOST: f32 = 10.0;

/// The precomputed fallback scorer.
pub struct FrequencyScorer {
    num_entities: usize,
    /// `ln(1 + n)` of how often each entity answered *any* query
    /// (object of a raw fact or subject of one, i.e. object of its
    /// inverse).
    base: Vec<f32>,
    /// `(s, r) -> {(o, last_seen_t)}` over the full history, raw and
    /// inverse directions.
    global: GlobalHistoryIndex,
    /// Latest timestamp in the history (recency normalisation).
    max_t: u32,
}

impl FrequencyScorer {
    /// Precomputes the frequency prior and copy index from a fact history.
    pub fn from_quads(num_entities: usize, num_relations: usize, quads: &[Quad]) -> Self {
        let nr = num_relations as u32;
        let mut counts = vec![0u64; num_entities];
        let mut global = GlobalHistoryIndex::new();
        let mut max_t = 0u32;
        for q in quads {
            if let Some(c) = counts.get_mut(q.o as usize) {
                *c += 1;
            }
            if let Some(c) = counts.get_mut(q.s as usize) {
                *c += 1;
            }
            global.add_triple_at(q.s, q.r, q.o, q.t);
            global.add_triple_at(q.o, q.r + nr, q.s, q.t);
            max_t = max_t.max(q.t);
        }
        let base = counts.iter().map(|&n| (1.0 + n as f32).ln()).collect();
        FrequencyScorer { num_entities, base, global, max_t }
    }

    /// Entity vocabulary size the scorer was built for.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }
}

impl ServeScorer for FrequencyScorer {
    fn name(&self) -> &str {
        "frequency-fallback"
    }

    fn score(&self, queries: &[(u32, u32)]) -> NdArray {
        let mut out = NdArray::zeros(queries.len(), self.num_entities);
        let denom = (self.max_t + 1) as f32;
        for (row, &(s, r)) in queries.iter().enumerate() {
            let dst = out.row_mut(row);
            // frequency prior, scaled below the copy boost's resolution
            for (d, &b) in dst.iter_mut().zip(&self.base) {
                *d = 1e-3 * b;
            }
            // historical copy: seen objects dominate, recent ones most
            if let Some(hist) = self.global.objects_with_recency(s, r) {
                for &(o, last_t) in hist {
                    if let Some(d) = dst.get_mut(o as usize) {
                        *d += COPY_BOOST + (last_t + 1) as f32 / denom;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quads() -> Vec<Quad> {
        vec![
            Quad::new(0, 0, 1, 0),
            Quad::new(0, 0, 2, 1),
            Quad::new(0, 0, 1, 2),
            Quad::new(3, 1, 4, 2),
        ]
    }

    #[test]
    fn historical_objects_outrank_everything_else() {
        let f = FrequencyScorer::from_quads(5, 2, &quads());
        let scores = f.score(&[(0, 0)]);
        let row = scores.row(0);
        // 1 and 2 are historical objects of (0, 0); both beat all others
        for other in [0usize, 3, 4] {
            assert!(row[1] > row[other] && row[2] > row[other], "{row:?}");
        }
        // 1 was seen more recently (t=2) than 2 (t=1)
        assert!(row[1] > row[2], "{row:?}");
    }

    #[test]
    fn inverse_direction_is_indexed() {
        let f = FrequencyScorer::from_quads(5, 2, &quads());
        // inverse of r=1: who is the subject of (?, 1, 4)? entity 3
        let scores = f.score(&[(4, 1 + 2)]);
        let row = scores.row(0);
        let best = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i);
        assert_eq!(best, Some(3));
    }

    #[test]
    fn scores_are_finite_and_shaped() {
        let f = FrequencyScorer::from_quads(7, 3, &quads());
        let scores = f.score(&[(0, 0), (6, 5)]);
        assert_eq!(scores.shape(), (2, 7));
        for r in 0..2 {
            assert!(scores.row(r).iter().all(|v| v.is_finite()));
        }
    }
}
