//! xERTE-lite (Han et al., ICLR 2021): temporal attention over the query's
//! history subgraph.
//!
//! xERTE expands a small temporal subgraph around each query and attends
//! over it with time-aware relation embeddings. The lite version keeps the
//! defining mechanism — *learned attention over the subject's recent
//! historical facts, conditioned on the query relation and the time gap* —
//! on top of a DistMult base score:
//!
//! `score(o | s, r, t) = ⟨e_s ⊙ e_r, e_o⟩ + γ · Σ_i θ_i · 1[o = o_i]`
//!
//! where the sum runs over the recent facts `(s, r_i, o_i, t_i)` of
//! subject `s` and `θ` is a softmax over `MLP([e_r ‖ e_{r_i} ‖ τ(t-t_i)])`
//! per query. Iterative subgraph expansion beyond one hop is omitted.

use crate::util::{train_sequential, FitConfig};
use hisres::{ExtrapolationModel, HistoryCtx};
use hisres_data::DatasetSplits;
use hisres_graph::Snapshot;
use hisres_nn::{Embedding, Linear};
use hisres_tensor::init::zeros;
use hisres_tensor::{no_grad, NdArray, ParamStore, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;

/// The xERTE-lite model.
pub struct Xerte {
    /// All trainable parameters.
    pub store: ParamStore,
    ent: Embedding,
    rel: Embedding,
    att: Linear,
    w_t: Tensor,
    b_t: Tensor,
    gamma: Tensor,
    /// History window length.
    pub history_len: usize,
    num_relations: usize,
}

impl Xerte {
    /// Builds the model.
    pub fn new(ne: usize, nr: usize, dim: usize, history_len: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ent = Embedding::new(&mut store, "ent", ne, dim, &mut rng);
        let rel = Embedding::new(&mut store, "rel", 2 * nr, dim, &mut rng);
        let att = Linear::new(&mut store, "att", 3 * dim, 1, false, &mut rng);
        let w_t = store.param("w_t", hisres_tensor::init::uniform(1, dim, 0.0, 1.0, &mut rng));
        let b_t = store.param("b_t", zeros(1, dim));
        let gamma = store.param("gamma", NdArray::scalar(1.0));
        Self { store, ent, rel, att, w_t, b_t, gamma, history_len, num_relations: nr }
    }

    /// Periodic codes of per-edge time gaps: `[m, d]`.
    fn gap_codes(&self, gaps: &[f32]) -> Tensor {
        let g = Tensor::constant(NdArray::from_vec(gaps.to_vec(), &[gaps.len(), 1]));
        g.matmul(&self.w_t).add_row(&self.b_t).cos_act()
    }

    /// Scores a query batch given the recent history.
    pub fn score_batch(&self, history: &[Snapshot], predict_t: u32, queries: &[(u32, u32)]) -> Tensor {
        let n = self.ent.count();
        let s_ids: Vec<u32> = queries.iter().map(|&(s, _)| s).collect();
        let r_ids: Vec<u32> = queries.iter().map(|&(_, r)| r).collect();
        let base = self
            .ent
            .lookup(&s_ids)
            .mul(&self.rel.lookup(&r_ids))
            .matmul_nt(&self.ent.table);

        // collect the subject history of each query within the window
        let start = history.len().saturating_sub(self.history_len);
        let mut q_idx: Vec<u32> = Vec::new();
        let mut hist_rel: Vec<u32> = Vec::new();
        let mut hist_obj: Vec<u32> = Vec::new();
        let mut gaps: Vec<f32> = Vec::new();
        let nr = self.num_relations as u32;
        for (qi, &(s, _)) in queries.iter().enumerate() {
            for snap in &history[start..] {
                for &(a, r0, b) in &snap.triples {
                    let gap = (predict_t.saturating_sub(snap.t)) as f32;
                    if a == s {
                        q_idx.push(qi as u32);
                        hist_rel.push(r0);
                        hist_obj.push(b);
                        gaps.push(gap);
                    } else if b == s {
                        q_idx.push(qi as u32);
                        hist_rel.push(r0 + nr);
                        hist_obj.push(a);
                        gaps.push(gap);
                    }
                }
            }
        }
        if q_idx.is_empty() {
            return base;
        }

        let rq = self.rel.table.gather_rows(
            &q_idx.iter().map(|&qi| r_ids[qi as usize]).collect::<Vec<u32>>(),
        );
        let rh = self.rel.lookup(&hist_rel);
        let tau = self.gap_codes(&gaps);
        let feat = Tensor::concat_cols(&[&rq, &rh, &tau]);
        let theta = self
            .att
            .forward(&feat)
            .leaky_relu(0.2)
            .segment_softmax(&q_idx, queries.len());

        // one-hot candidate matrix: row i marks hist_obj[i]
        let mut onehot = NdArray::zeros(q_idx.len(), n);
        for (i, &o) in hist_obj.iter().enumerate() {
            onehot.set(i, o as usize, 1.0);
        }
        let boost = Tensor::constant(onehot)
            .mul_col(&theta)
            .scatter_add_rows(&q_idx, queries.len());
        let gamma_rows = self.gamma.gather_rows(&vec![0u32; queries.len()]);
        base.add(&boost.mul_col(&gamma_rows))
    }

    /// Fits sequentially.
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        let nr = self.num_relations as u32;
        let this: &Xerte = self;
        train_sequential(&this.store, data, fit, |hist, target, _global, _rng| {
            let mut queries = Vec::new();
            let mut targets = Vec::new();
            for &(s, r, o) in &target.triples {
                queries.push((s, r));
                targets.push(o);
                queries.push((o, r + nr));
                targets.push(s);
            }
            this.score_batch(hist, target.t, &queries)
                .softmax_cross_entropy(&targets)
        });
    }
}

impl ExtrapolationModel for Xerte {
    fn name(&self) -> String {
        "xERTE".into()
    }

    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        no_grad(|| self.score_batch(ctx.snapshots, ctx.t, queries).value_clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_graph::{Quad, Tkg};

    #[test]
    fn empty_history_falls_back_to_distmult() {
        let m = Xerte::new(5, 1, 8, 3, 0);
        let s = m.score_batch(&[], 5, &[(0, 0)]);
        assert_eq!(s.shape(), (1, 5));
    }

    #[test]
    fn history_boost_targets_observed_objects() {
        let m = Xerte::new(5, 1, 8, 3, 1);
        let hist = vec![Snapshot { t: 0, triples: vec![(0, 0, 3)] }];
        let with = m.score_batch(&hist, 1, &[(0, 0)]).value_clone();
        let without = m.score_batch(&[], 1, &[(0, 0)]).value_clone();
        // entity 3 (the only history object, attention weight 1, γ=1)
        let delta3 = with.get(0, 3) - without.get(0, 3);
        let delta1 = with.get(0, 1) - without.get(0, 1);
        assert!((delta3 - 1.0).abs() < 1e-5, "boost {delta3}");
        assert!(delta1.abs() < 1e-6);
    }

    #[test]
    fn inverse_direction_facts_are_visible() {
        // s appears as *object* in history; the subject should be boosted
        let m = Xerte::new(5, 1, 8, 3, 2);
        let hist = vec![Snapshot { t: 0, triples: vec![(4, 0, 0)] }];
        let with = m.score_batch(&hist, 1, &[(0, 0)]).value_clone();
        let without = m.score_batch(&[], 1, &[(0, 0)]).value_clone();
        assert!(with.get(0, 4) - without.get(0, 4) > 0.5);
    }

    #[test]
    fn learns_to_use_history() {
        // block-persistent objects: the object holds for 5 consecutive
        // steps, so the subject's recent history predicts the answer
        let mut quads = Vec::new();
        for t in 0..40u32 {
            quads.push(Quad::new(0, 0, 1 + ((t / 5) % 4), t));
        }
        let data = DatasetSplits::from_tkg("h", "1 step", &Tkg::new(5, 1, quads));
        let mut m = Xerte::new(5, 1, 8, 2, 3);
        m.fit(&data, &FitConfig { epochs: 8, lr: 0.02, ..Default::default() });
        // gamma should stay meaningfully positive: history carries signal
        assert!(m.gamma.value().item() > 0.1, "gamma {}", m.gamma.value().item());
    }
}
