//! CENET-lite (Xu et al., AAAI 2023): historical contrastive learning.
//!
//! CENET scores queries with two heads — one biased toward *historical*
//! entities (seen with the query pair before) and one toward
//! *non-historical* entities — and trains a binary classifier that
//! predicts which regime the answer falls in; at inference the classifier
//! gates the two heads. The "-lite" simplification replaces the original's
//! supervised-contrastive embedding stage with direct joint training of
//! the heads and the classifier, keeping the mechanism that defines the
//! model (the historical/non-historical split).

use crate::util::{mask_matrix, train_sequential, FitConfig};
use hisres::{ExtrapolationModel, HistoryCtx};
use hisres_data::DatasetSplits;
use hisres_graph::GlobalHistoryIndex;
use hisres_nn::{Embedding, Linear};
use hisres_tensor::{no_grad, NdArray, ParamStore, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;

/// The CENET-lite model.
pub struct Cenet {
    /// All trainable parameters.
    pub store: ParamStore,
    ent: Embedding,
    rel: Embedding,
    hist_head: Linear,
    nonhist_head: Linear,
    classifier: Linear,
    num_relations: usize,
}

impl Cenet {
    /// Builds the model.
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ent = Embedding::new(&mut store, "ent", num_entities, dim, &mut rng);
        let rel = Embedding::new(&mut store, "rel", 2 * num_relations, dim, &mut rng);
        let hist_head = Linear::new(&mut store, "hist", 2 * dim, num_entities, true, &mut rng);
        let nonhist_head = Linear::new(&mut store, "nonhist", 2 * dim, num_entities, true, &mut rng);
        let classifier = Linear::new(&mut store, "cls", 2 * dim, 1, true, &mut rng);
        Self { store, ent, rel, hist_head, nonhist_head, classifier, num_relations }
    }

    fn features(&self, queries: &[(u32, u32)]) -> Tensor {
        let s_ids: Vec<u32> = queries.iter().map(|&(s, _)| s).collect();
        let r_ids: Vec<u32> = queries.iter().map(|&(_, r)| r).collect();
        Tensor::concat_cols(&[&self.ent.lookup(&s_ids), &self.rel.lookup(&r_ids)])
    }

    /// Classifier-gated logits `[q, num_entities]`.
    pub fn logits(&self, queries: &[(u32, u32)], global: &GlobalHistoryIndex) -> Tensor {
        let feat = self.features(queries);
        let mask = Tensor::constant(mask_matrix(global, queries, self.ent.count()));
        let inv_mask = mask.neg().add_scalar(1.0);
        // bias each head toward its regime
        let hist = self.hist_head.forward(&feat).add(&mask.scale(2.0));
        let nonhist = self.nonhist_head.forward(&feat).add(&inv_mask.scale(2.0));
        // gate: probability the answer is historical, per query
        let p_hist = self.classifier.forward(&feat).sigmoid(); // [q, 1]
        let gated_h = hist.mul_col(&p_hist);
        let gated_n = nonhist.mul_col(&p_hist.neg().add_scalar(1.0));
        gated_h.add(&gated_n)
    }

    /// Classifier logits alone (for the auxiliary BCE loss).
    fn classifier_logits(&self, queries: &[(u32, u32)]) -> Tensor {
        self.classifier.forward(&self.features(queries))
    }

    /// Fits heads and classifier jointly.
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        let nr = self.num_relations as u32;
        let this: &Cenet = self;
        train_sequential(&this.store, data, fit, |_hist, target, global, _rng| {
            let mut queries = Vec::new();
            let mut targets = Vec::new();
            for &(s, r, o) in &target.triples {
                queries.push((s, r));
                targets.push(o);
                queries.push((o, r + nr));
                targets.push(s);
            }
            let ce = this.logits(&queries, global).softmax_cross_entropy(&targets);
            // auxiliary: was the gold answer in the historical vocabulary?
            let labels: Vec<f32> = queries
                .iter()
                .zip(&targets)
                .map(|(&(s, r), &o)| {
                    global
                        .objects(s, r)
                        .is_some_and(|objs| objs.binary_search(&o).is_ok())
                        as u8 as f32
                })
                .collect();
            let bce = this.classifier_logits(&queries).bce_with_logits(&labels);
            ce.add(&bce.scale(0.5))
        });
    }
}

impl ExtrapolationModel for Cenet {
    fn name(&self) -> String {
        "CENET".into()
    }

    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        no_grad(|| self.logits(queries, ctx.global).value_clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_graph::{Quad, Tkg};

    #[test]
    fn logits_shape() {
        let m = Cenet::new(7, 2, 8, 0);
        let g = GlobalHistoryIndex::new();
        assert_eq!(m.logits(&[(0, 0), (1, 3)], &g).shape(), (2, 7));
    }

    #[test]
    fn gating_shift_matches_classifier_output() {
        // Marking object 5 historical moves its gated logit by exactly
        // p·(+2) + (1-p)·(-2) = 4p - 2, where p is the classifier output;
        // unmarked entities must not move at all.
        let m = Cenet::new(7, 1, 8, 3);
        let mut g = GlobalHistoryIndex::new();
        g.add_triple(0, 0, 5);
        let with = m.logits(&[(0, 0)], &g).value_clone();
        let without = m.logits(&[(0, 0)], &GlobalHistoryIndex::new()).value_clone();
        let p = {
            let f = m.features(&[(0, 0)]);
            m.classifier.forward(&f).sigmoid().value().item()
        };
        let delta5 = with.get(0, 5) - without.get(0, 5);
        let delta1 = with.get(0, 1) - without.get(0, 1);
        assert!((delta5 - (4.0 * p - 2.0)).abs() < 1e-5, "{delta5} vs {}", 4.0 * p - 2.0);
        assert!(delta1.abs() < 1e-6, "unmarked entity moved by {delta1}");
    }

    #[test]
    fn learns_repetitive_data() {
        let mut quads = Vec::new();
        for t in 0..40u32 {
            let s = t % 4;
            quads.push(Quad::new(s, 0, s + 4, t));
        }
        let data = DatasetSplits::from_tkg("p", "1 step", &Tkg::new(8, 1, quads));
        let mut m = Cenet::new(8, 1, 8, 2);
        m.fit(&data, &FitConfig { epochs: 12, lr: 0.02, ..Default::default() });
        let mut g = GlobalHistoryIndex::new();
        for q in &data.train.quads {
            g.add_triple(q.s, q.r, q.o);
        }
        let p = m.logits(&[(2, 0)], &g);
        assert_eq!(p.value().argmax_rows(), vec![6]);
    }
}
