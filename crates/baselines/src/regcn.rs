//! RE-GCN and its descendants expressed on the HisRES skeleton.
//!
//! RE-GCN (Li et al., SIGIR 2021) is CompGCN aggregation + GRU evolution +
//! static enhancement + ConvTransE — exactly the HisRES architecture with
//! every HisRES contribution switched off (no inter-snapshot granularity,
//! no global relevance encoder, no time encoding). Expressing it as a
//! configuration keeps the comparison honest: the measured gap between
//! RE-GCN and HisRES is attributable to the paper's contributions alone,
//! not to implementation differences.
//!
//! * **CEN** (Li et al., ACL 2022) — length-aware ensemble: the trained
//!   evolutionary model is evaluated at several history lengths and the
//!   softmax outputs averaged (the original's curriculum schedule is
//!   simplified to full-length training).
//! * **TiRGN-lite** (Li et al., IJCAI 2022) — RE-GCN plus time encoding,
//!   with a CyGNet-style global-history vocabulary that redistributes
//!   probability mass toward historical candidates at inference
//!   (the paper itself characterises TiRGN's global encoder as
//!   "a simple vector to represent global repetitive facts").
//! * **LogCL-lite** (Chen et al., ICDE 2024) — RE-GCN plus a
//!   query-relevant global graph aggregated with plain CompGCN and fused
//!   by summation: global structuring *without* HisRES's attention
//!   prioritisation (ConvGAT), multi-granularity or self-gating. The
//!   original's contrastive-learning objective is omitted.

use crate::util::{mask_matrix, FitConfig};
use hisres::trainer::HisResEval;
use hisres::{
    evaluate as hisres_evaluate, ExtrapolationModel, GlobalAggregator, HisRes, HisResConfig,
    HistoryCtx, TrainConfig,
};
use hisres_data::DatasetSplits;
use hisres_graph::EdgeList;
use hisres_tensor::{no_grad, NdArray};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;

// re-export to keep the paths used by tests/benches short
pub use hisres::Split;

/// Builds the RE-GCN configuration.
pub fn regcn_config(dim: usize, history_len: usize, seed: u64) -> HisResConfig {
    HisResConfig {
        dim,
        history_len,
        conv_channels: (dim / 4).max(2),
        use_global: false,
        use_inter_snapshot: false,
        use_time_encoding: false,
        use_self_gating_local: false,
        use_self_gating_global: false,
        seed,
        ..Default::default()
    }
}

/// Builds the LogCL-lite configuration.
pub fn logcl_config(dim: usize, history_len: usize, seed: u64) -> HisResConfig {
    HisResConfig {
        use_global: true,
        global_aggregator: GlobalAggregator::CompGcn,
        use_self_gating_global: false,
        use_time_encoding: true,
        ..regcn_config(dim, history_len, seed)
    }
}

/// A HisRES-skeleton model with a fixed label (RE-GCN, LogCL-lite, …).
pub struct SkeletonModel {
    /// The underlying model.
    pub inner: HisRes,
    label: String,
}

impl SkeletonModel {
    /// RE-GCN.
    pub fn regcn(ne: usize, nr: usize, dim: usize, history_len: usize, seed: u64) -> Self {
        Self { inner: HisRes::new(&regcn_config(dim, history_len, seed), ne, nr), label: "RE-GCN".into() }
    }

    /// LogCL-lite.
    pub fn logcl(ne: usize, nr: usize, dim: usize, history_len: usize, seed: u64) -> Self {
        Self { inner: HisRes::new(&logcl_config(dim, history_len, seed), ne, nr), label: "LogCL".into() }
    }

    /// Trains via the shared HisRES trainer (no early stopping).
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        let tc = TrainConfig {
            epochs: fit.epochs,
            lr: fit.lr,
            grad_clip: fit.grad_clip,
            patience: 0,
            verbose: false,
            seed: fit.seed,
            guard: Default::default(),
        };
        hisres::train(&self.inner, data, &tc).unwrap();
    }
}

impl ExtrapolationModel for SkeletonModel {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        HisResEval { model: &self.inner }.score(ctx, queries)
    }
}

/// CEN: evaluates the trained evolutionary model at several history
/// lengths and averages the softmax distributions.
pub struct Cen {
    /// The trained evolutionary model.
    pub inner: HisRes,
    /// Ensemble history lengths.
    pub lengths: Vec<usize>,
}

impl Cen {
    /// Builds a CEN over an RE-GCN skeleton with ensemble lengths
    /// `1..=history_len` (stride 2 to keep inference cheap).
    pub fn new(ne: usize, nr: usize, dim: usize, history_len: usize, seed: u64) -> Self {
        let lengths: Vec<usize> = (1..=history_len).step_by(2).collect();
        Self { inner: HisRes::new(&regcn_config(dim, history_len, seed), ne, nr), lengths }
    }

    /// Trains the underlying model at full history length.
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        let tc = TrainConfig {
            epochs: fit.epochs,
            lr: fit.lr,
            grad_clip: fit.grad_clip,
            patience: 0,
            verbose: false,
            seed: fit.seed,
            guard: Default::default(),
        };
        hisres::train(&self.inner, data, &tc).unwrap();
    }
}

impl ExtrapolationModel for Cen {
    fn name(&self) -> String {
        "CEN".into()
    }

    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        let mut rng = StdRng::seed_from_u64(0);
        no_grad(|| {
            let mut acc = NdArray::zeros(queries.len(), ctx.num_entities);
            for &l in &self.lengths {
                let start = ctx.snapshots.len().saturating_sub(l);
                let enc = self.inner.encode(
                    &ctx.snapshots[start..],
                    ctx.t,
                    &EdgeList::new(),
                    false,
                    &mut rng,
                );
                let probs = self
                    .inner
                    .score_objects(&enc, queries, false, &mut rng)
                    .softmax_rows();
                acc.add_assign(&probs.value());
            }
            acc.scale_inplace(1.0 / self.lengths.len() as f32);
            acc
        })
    }
}

/// TiRGN-lite: RE-GCN + time encoding, with a global-history vocabulary
/// mixture at inference.
pub struct TiRgn {
    /// The trained local (time-guided) model.
    pub inner: HisRes,
    /// Weight of the history-restricted mode (original's history rate).
    pub lambda: f32,
}

impl TiRgn {
    /// Builds the model.
    pub fn new(ne: usize, nr: usize, dim: usize, history_len: usize, seed: u64) -> Self {
        let cfg = HisResConfig {
            use_time_encoding: true,
            ..regcn_config(dim, history_len, seed)
        };
        Self { inner: HisRes::new(&cfg, ne, nr), lambda: 0.3 }
    }

    /// Trains the local model.
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        let tc = TrainConfig {
            epochs: fit.epochs,
            lr: fit.lr,
            grad_clip: fit.grad_clip,
            patience: 0,
            verbose: false,
            seed: fit.seed,
            guard: Default::default(),
        };
        hisres::train(&self.inner, data, &tc).unwrap();
    }
}

impl ExtrapolationModel for TiRgn {
    fn name(&self) -> String {
        "TiRGN".into()
    }

    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        let local = HisResEval { model: &self.inner }.score(ctx, queries);
        // CyGNet-style mixture: renormalise within the historical
        // vocabulary and blend with the unrestricted distribution.
        let mask = mask_matrix(ctx.global, queries, ctx.num_entities);
        no_grad(|| {
            let logits = hisres_tensor::Tensor::constant(local);
            let penalty =
                hisres_tensor::Tensor::constant(mask.map(|m| (m - 1.0) * 30.0));
            let p_local = logits.softmax_rows().scale(1.0 - self.lambda);
            let p_hist = logits.add(&penalty).softmax_rows().scale(self.lambda);
            p_local.add(&p_hist).value_clone()
        })
    }
}

/// Convenience: evaluates any skeleton model on a split (used by tests).
pub fn eval_split(model: &impl ExtrapolationModel, data: &DatasetSplits, split: Split) -> f64 {
    hisres_evaluate(model, data, split).mrr
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_data::synthetic::{generate, SyntheticConfig};

    fn tiny_data() -> DatasetSplits {
        let cfg = SyntheticConfig {
            num_entities: 15,
            num_relations: 4,
            num_timestamps: 25,
            periodic_patterns: 8,
            period_range: (2, 5),
            causal_rules: 1,
            trigger_events_per_t: 2,
            recency_draws_per_t: 2,
            noise_events_per_t: 1,
            seed: 3,
            ..Default::default()
        };
        DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
    }

    #[test]
    fn regcn_config_disables_hisres_contributions() {
        let c = regcn_config(8, 3, 0);
        assert!(!c.use_global && !c.use_inter_snapshot && !c.use_time_encoding);
        c.validate().unwrap();
    }

    #[test]
    fn logcl_config_enables_plain_global() {
        let c = logcl_config(8, 3, 0);
        assert!(c.use_global);
        assert_eq!(c.global_aggregator, GlobalAggregator::CompGcn);
        assert!(!c.use_self_gating_global);
        c.validate().unwrap();
    }

    #[test]
    fn regcn_trains_and_evaluates() {
        let data = tiny_data();
        let mut m = SkeletonModel::regcn(15, 4, 8, 3, 0);
        m.fit(&data, &FitConfig { epochs: 2, lr: 0.01, ..Default::default() });
        let mrr = eval_split(&m, &data, Split::Test);
        assert!(mrr > 0.0);
        assert_eq!(m.name(), "RE-GCN");
    }

    #[test]
    fn cen_averages_over_lengths() {
        let data = tiny_data();
        let mut m = Cen::new(15, 4, 8, 5, 0);
        assert_eq!(m.lengths, vec![1, 3, 5]);
        m.fit(&data, &FitConfig { epochs: 1, lr: 0.01, ..Default::default() });
        let mrr = eval_split(&m, &data, Split::Test);
        assert!(mrr > 0.0);
    }

    #[test]
    fn tirgn_scores_are_probabilities() {
        let data = tiny_data();
        let m = TiRgn::new(15, 4, 8, 3, 0);
        let snaps = hisres_graph::snapshot::partition(&data.train);
        let mut global = hisres_graph::GlobalHistoryIndex::new();
        for s in &snaps {
            global.add_snapshot(s, 4);
        }
        let ctx = HistoryCtx {
            snapshots: &snaps,
            t: snaps.len() as u32,
            global: &global,
            num_entities: 15,
            num_relations: 4,
        };
        let scores = m.score(&ctx, &[(0, 0), (1, 1)]);
        for i in 0..2 {
            let sum: f32 = scores.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "row {i} sums to {sum}");
        }
    }
}
