#![warn(missing_docs)]

//! # hisres-baselines
//!
//! From-scratch Rust implementations of the comparison models in Table 3
//! of the HisRES paper, all trained and evaluated under the same
//! time-aware filtered protocol as HisRES itself:
//!
//! **Static KG reasoning** ([`static_kg`]) — DistMult, ComplEx, RotatE,
//! ConvE-lite, ConvTransE. These ignore timestamps entirely; the gap to
//! the temporal models reproduces the paper's first observation.
//!
//! **Historical-statistics models** — [`cygnet`] (copy-generation over a
//! historical vocabulary) and [`cenet`] (CENET-lite: a historical /
//! non-historical classifier gating two scoring heads).
//!
//! **Evolutionary models** — [`renet`] (RE-NET-lite: parameter-free mean
//! aggregation + GRU), [`regcn`] (RE-GCN, plus the CEN length-ensemble,
//! TiRGN-lite's global-vocabulary mixture and LogCL-lite's query-relevant
//! global graph, all expressed as configurations/wrappers of the HisRES
//! skeleton — which is architecturally honest: RE-GCN *is* HisRES minus
//! its contributions), [`retia_rpc`] (RETIA-lite / RPC-lite with relation
//! line-graph aggregation), and [`xerte`] (xERTE-lite: temporal attention
//! over the query's subject history).
//!
//! Every model implements [`hisres::ExtrapolationModel`] for evaluation
//! and the [`Baseline`] trait for training; [`registry::all_baselines`]
//! yields the full Table 3 roster.
//!
//! One resident is not a Table 3 model at all: [`frequency`] is the
//! training-free historical-copy + global-frequency scorer that
//! `hisres serve` degrades to when a request's deadline budget cannot
//! cover the full encoder.
//!
//! "-lite" suffixes mark simplified reimplementations: the mechanism that
//! defines the model is present, engineering details of the original
//! codebases (curriculum schedules, contrastive pre-training stages,
//! reinforcement-learned path search) are reduced to their supervised
//! cores. DESIGN.md lists each simplification.

pub mod cenet;
pub mod cygnet;
pub mod frequency;
pub mod regcn;
pub mod registry;
pub mod renet;
pub mod retia_rpc;
pub mod static_kg;
pub mod util;
pub mod xerte;

pub use frequency::FrequencyScorer;
pub use registry::{all_baselines, Baseline};
