//! RETIA-lite and RPC-lite: relation line-graph models.
//!
//! Both originals augment RE-GCN-style entity aggregation with a **line
//! graph over relations** — relations that co-occur (share an entity)
//! within a snapshot exchange messages, so relation representations
//! reflect relational correlations, not just entity context. RPC
//! additionally models **periodic temporal correspondence**, which the
//! lite version realises with the cosine time encoding applied to the
//! entity matrix each step.
//!
//! Simplifications (documented in DESIGN.md): the line graph connects the
//! relations incident to each entity in a ring rather than a clique
//! (bounding edge count at dense snapshots), and RETIA's twin-interact
//! hyper-relation updates / RPC's correspondence-unit gating are reduced
//! to one message-passing round per snapshot.

use crate::util::{train_sequential, FitConfig};
use hisres::{ExtrapolationModel, HistoryCtx};
use hisres_data::DatasetSplits;
use hisres_graph::{EdgeList, Snapshot};
use hisres_nn::{CompGcnLayer, ConvTransE, Embedding, GruCell, Linear, TimeEncoding};
use hisres_tensor::{no_grad, NdArray, ParamStore, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::{Rng, SeedableRng};

/// Builds the relation line graph of a snapshot: for every entity, the
/// incident relations (sorted, deduplicated) are connected in a ring.
/// Returns `(src_rel, dst_rel)` pairs.
pub fn relation_line_graph(edges: &EdgeList, num_rel2: usize) -> (Vec<u32>, Vec<u32>) {
    let mut incident: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for i in 0..edges.len() {
        incident.entry(edges.src[i]).or_default().push(edges.rel[i]);
        incident.entry(edges.dst[i]).or_default().push(edges.rel[i]);
    }
    let mut src = Vec::new();
    let mut dst = Vec::new();
    for rels in incident.values_mut() {
        rels.sort_unstable();
        rels.dedup();
        if rels.len() < 2 {
            continue;
        }
        for w in 0..rels.len() {
            let a = rels[w];
            let b = rels[(w + 1) % rels.len()];
            if a == b {
                continue;
            }
            debug_assert!((a as usize) < num_rel2 && (b as usize) < num_rel2);
            src.push(a);
            dst.push(b);
            src.push(b);
            dst.push(a);
        }
    }
    (src, dst)
}

/// A line-graph evolutionary model (RETIA-lite when `periodic` is off,
/// RPC-lite when on).
pub struct LineGraphModel {
    /// All trainable parameters.
    pub store: ParamStore,
    label: &'static str,
    ent: Embedding,
    rel: Embedding,
    rel_msg: Linear,
    rel_self: Linear,
    ent_layers: Vec<CompGcnLayer>,
    ent_gru: GruCell,
    rel_gru: GruCell,
    time_enc: Option<TimeEncoding>,
    dec: ConvTransE,
    /// History window length.
    pub history_len: usize,
    num_relations: usize,
}

impl LineGraphModel {
    /// RETIA-lite (line graph, no periodic unit).
    pub fn retia(ne: usize, nr: usize, dim: usize, history_len: usize, seed: u64) -> Self {
        Self::build("RETIA", false, ne, nr, dim, history_len, seed)
    }

    /// RPC-lite (line graph + periodic time encoding).
    pub fn rpc(ne: usize, nr: usize, dim: usize, history_len: usize, seed: u64) -> Self {
        Self::build("RPC", true, ne, nr, dim, history_len, seed)
    }

    fn build(
        label: &'static str,
        periodic: bool,
        ne: usize,
        nr: usize,
        dim: usize,
        history_len: usize,
        seed: u64,
    ) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ent = Embedding::new(&mut store, "ent", ne, dim, &mut rng);
        let rel = Embedding::new(&mut store, "rel", 2 * nr, dim, &mut rng);
        let rel_msg = Linear::new(&mut store, "rel_msg", dim, dim, false, &mut rng);
        let rel_self = Linear::new(&mut store, "rel_self", dim, dim, false, &mut rng);
        let ent_layers = (0..2)
            .map(|i| CompGcnLayer::new(&mut store, &format!("ent{i}"), dim, false, &mut rng))
            .collect();
        let ent_gru = GruCell::new(&mut store, "ent_gru", dim, &mut rng);
        let rel_gru = GruCell::new(&mut store, "rel_gru", dim, &mut rng);
        let time_enc = periodic.then(|| TimeEncoding::new(&mut store, "time", dim, &mut rng));
        let dec = ConvTransE::new(&mut store, "dec", dim, (dim / 4).max(2), 3, 0.2, &mut rng);
        Self {
            store,
            label,
            ent,
            rel,
            rel_msg,
            rel_self,
            ent_layers,
            ent_gru,
            rel_gru,
            time_enc,
            dec,
            history_len,
            num_relations: nr,
        }
    }

    /// One line-graph message round over relations.
    fn relation_round(&self, rels: &Tensor, edges: &EdgeList) -> Tensor {
        let (src, dst) = relation_line_graph(edges, rels.rows());
        let self_part = self.rel_self.forward(rels);
        if src.is_empty() {
            return self_part.rrelu();
        }
        let msgs = self.rel_msg.forward(&rels.gather_rows(&src));
        // mean over incoming line-graph edges
        let mut deg = vec![0.0f32; rels.rows()];
        for &d in &dst {
            deg[d as usize] += 1.0;
        }
        let norm: Vec<f32> = dst.iter().map(|&d| 1.0 / deg[d as usize]).collect();
        let msgs = msgs.mul_col(&Tensor::constant(NdArray::from_vec(norm, &[dst.len(), 1])));
        msgs.scatter_add_rows(&dst, rels.rows()).add(&self_part).rrelu()
    }

    /// Evolves entity and relation matrices over the history window.
    pub fn encode(&self, history: &[Snapshot], predict_t: u32) -> (Tensor, Tensor) {
        let start = history.len().saturating_sub(self.history_len);
        let mut h = self.ent.table.clone();
        let mut r = self.rel.table.clone();
        for snap in &history[start..] {
            let edges = EdgeList::from_snapshot(snap, self.num_relations);
            // relation twin step first: relations absorb co-occurrence
            let r_agg = self.relation_round(&r, &edges);
            let e_in = match &self.time_enc {
                Some(te) => te.apply(&h, (predict_t.saturating_sub(snap.t)) as f32),
                None => h.clone(),
            };
            let mut e_agg = e_in.clone();
            let mut r_pass = r_agg.clone();
            for layer in &self.ent_layers {
                let (e, rr) = layer.forward(&e_agg, &r_pass, &edges);
                e_agg = e;
                r_pass = rr;
            }
            h = self.ent_gru.forward(&e_agg, &e_in);
            r = self.rel_gru.forward(&r_agg, &r);
        }
        (h, r)
    }

    /// Scores a query batch.
    pub fn score_batch<R: Rng>(
        &self,
        h: &Tensor,
        r: &Tensor,
        queries: &[(u32, u32)],
        training: bool,
        rng: &mut R,
    ) -> Tensor {
        let s_ids: Vec<u32> = queries.iter().map(|&(s, _)| s).collect();
        let r_ids: Vec<u32> = queries.iter().map(|&(_, rr)| rr).collect();
        self.dec.score(
            &h.gather_rows(&s_ids),
            &r.gather_rows(&r_ids),
            h,
            training,
            rng,
        )
    }

    /// Fits sequentially.
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        let nr = self.num_relations as u32;
        let this: &LineGraphModel = self;
        train_sequential(&this.store, data, fit, |hist, target, _global, rng| {
            let (h, r) = this.encode(hist, target.t);
            let mut queries = Vec::new();
            let mut targets = Vec::new();
            for &(s, rel, o) in &target.triples {
                queries.push((s, rel));
                targets.push(o);
                queries.push((o, rel + nr));
                targets.push(s);
            }
            this.score_batch(&h, &r, &queries, true, rng)
                .softmax_cross_entropy(&targets)
        });
    }
}

impl ExtrapolationModel for LineGraphModel {
    fn name(&self) -> String {
        self.label.to_owned()
    }

    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        let mut rng = StdRng::seed_from_u64(0);
        no_grad(|| {
            let (h, r) = self.encode(ctx.snapshots, ctx.t);
            self.score_batch(&h, &r, queries, false, &mut rng).value_clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_graph_connects_co_occurring_relations() {
        // entity 1 sees relations 0 (incoming) and 1 (outgoing)
        let mut e = EdgeList::new();
        e.push(0, 0, 1);
        e.push(1, 1, 2);
        let (src, dst) = relation_line_graph(&e, 4);
        assert!(!src.is_empty());
        let pairs: Vec<(u32, u32)> = src.iter().copied().zip(dst.iter().copied()).collect();
        assert!(pairs.contains(&(0, 1)) && pairs.contains(&(1, 0)));
    }

    #[test]
    fn line_graph_of_disjoint_relations_is_empty() {
        let mut e = EdgeList::new();
        e.push(0, 0, 1);
        e.push(2, 1, 3);
        let (src, _dst) = relation_line_graph(&e, 4);
        assert!(src.is_empty());
    }

    #[test]
    fn ring_bounds_edges_linearly() {
        // one hub entity with 10 incident relations: ring gives 20 directed
        // edges, not the 90 a clique would produce
        let mut e = EdgeList::new();
        for r in 0..10 {
            e.push(0, r, 1 + r);
        }
        let (src, _): (Vec<u32>, Vec<u32>) = relation_line_graph(&e, 10);
        assert!(src.len() <= 2 * 2 * 10, "got {} edges", src.len());
    }

    #[test]
    fn retia_encodes_and_scores() {
        let m = LineGraphModel::retia(6, 2, 8, 3, 0);
        let snaps = vec![
            Snapshot { t: 0, triples: vec![(0, 0, 1), (1, 1, 2)] },
            Snapshot { t: 1, triples: vec![(2, 0, 3)] },
        ];
        let (h, r) = m.encode(&snaps, 2);
        assert_eq!(h.shape(), (6, 8));
        assert_eq!(r.shape(), (4, 8));
        let mut rng = StdRng::seed_from_u64(0);
        let s = m.score_batch(&h, &r, &[(0, 0)], false, &mut rng);
        assert_eq!(s.shape(), (1, 6));
    }

    #[test]
    fn rpc_differs_from_retia_by_time_encoding() {
        let retia = LineGraphModel::retia(6, 2, 8, 3, 0);
        let rpc = LineGraphModel::rpc(6, 2, 8, 3, 0);
        assert!(retia.time_enc.is_none());
        assert!(rpc.time_enc.is_some());
        assert!(rpc.store.num_scalars() > retia.store.num_scalars());
    }

    #[test]
    fn gradients_flow_through_line_graph_round() {
        let m = LineGraphModel::retia(6, 2, 8, 3, 1);
        let snaps = vec![Snapshot { t: 0, triples: vec![(0, 0, 1), (1, 1, 2)] }];
        let (h, r) = m.encode(&snaps, 1);
        let mut rng = StdRng::seed_from_u64(0);
        m.score_batch(&h, &r, &[(0, 0)], true, &mut rng)
            .softmax_cross_entropy(&[1])
            .backward();
        assert!(m.rel_msg.w.grad().is_some(), "line-graph message weights untouched");
        assert!(m.ent.table.grad().is_some());
    }
}
