//! Shared training scaffolding for the baselines.

use hisres_data::DatasetSplits;
use hisres_graph::{GlobalHistoryIndex, Quad, Snapshot};
use hisres_tensor::{clip_grad_norm, Adam, NdArray, ParamStore, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::{Rng, SeedableRng};

/// Per-baseline optimisation schedule.
#[derive(Clone, Copy, Debug)]
pub struct FitConfig {
    /// Epochs over the training stream.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global-norm gradient clip.
    pub grad_clip: f32,
    /// RNG seed for shuffling/dropout.
    pub seed: u64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self { epochs: 10, lr: 0.01, grad_clip: 1.0, seed: 11 }
    }
}

/// Training quads with inverse directions appended (the standard protocol:
/// every model sees both orientations).
pub fn with_inverses(quads: &[Quad], num_relations: usize) -> Vec<Quad> {
    let nr = num_relations as u32;
    let mut out = Vec::with_capacity(quads.len() * 2);
    for q in quads {
        out.push(*q);
        out.push(q.inverse(nr));
    }
    out
}

/// Minibatch training over time-agnostic quads (static models): shuffles
/// `(s, r) → o` samples each epoch and minimises cross-entropy with the
/// supplied batch-scoring closure.
pub fn train_static(
    store: &ParamStore,
    data: &DatasetSplits,
    fit: &FitConfig,
    batch_size: usize,
    mut score_batch: impl FnMut(&[(u32, u32)], bool, &mut StdRng) -> Tensor,
) {
    let mut opt = Adam::new(store.params().cloned().collect(), fit.lr);
    let mut rng = StdRng::seed_from_u64(fit.seed);
    let samples = with_inverses(&data.train.quads, data.num_relations());
    let mut order: Vec<usize> = (0..samples.len()).collect();
    for _ in 0..fit.epochs {
        // Fisher–Yates shuffle
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for chunk in order.chunks(batch_size) {
            let queries: Vec<(u32, u32)> = chunk.iter().map(|&i| (samples[i].s, samples[i].r)).collect();
            let targets: Vec<u32> = chunk.iter().map(|&i| samples[i].o).collect();
            opt.zero_grad();
            let logits = score_batch(&queries, true, &mut rng);
            logits.softmax_cross_entropy(&targets).backward();
            clip_grad_norm(store.params(), fit.grad_clip);
            opt.step();
        }
    }
}

/// Sequential training over the timeline (temporal models): walks the
/// training snapshots in order, calling `loss_at` for each non-empty
/// snapshot with the dense history prefix and an incrementally built
/// global-history index, and stepping the optimiser.
pub fn train_sequential(
    store: &ParamStore,
    data: &DatasetSplits,
    fit: &FitConfig,
    mut loss_at: impl FnMut(&[Snapshot], &Snapshot, &GlobalHistoryIndex, &mut StdRng) -> Tensor,
) {
    let mut opt = Adam::new(store.params().cloned().collect(), fit.lr);
    let mut rng = StdRng::seed_from_u64(fit.seed);
    let snaps = hisres_graph::snapshot::partition(&data.train);
    let nr = data.num_relations();
    for _ in 0..fit.epochs {
        let mut global = GlobalHistoryIndex::new();
        for t in 0..snaps.len() {
            let target = &snaps[t];
            if target.triples.is_empty() {
                continue;
            }
            if t == 0 {
                global.add_snapshot(target, nr);
                continue;
            }
            opt.zero_grad();
            let loss = loss_at(&snaps[..t], target, &global, &mut rng);
            loss.backward();
            clip_grad_norm(store.params(), fit.grad_clip);
            opt.step();
            global.add_snapshot(target, nr);
        }
    }
}

/// Builds the `[queries, num_entities]` 0/1 historical-vocabulary mask
/// matrix for a query batch.
pub fn mask_matrix(
    global: &GlobalHistoryIndex,
    queries: &[(u32, u32)],
    num_entities: usize,
) -> NdArray {
    let mut m = NdArray::zeros(queries.len(), num_entities);
    for (i, &(s, r)) in queries.iter().enumerate() {
        if let Some(objs) = global.objects(s, r) {
            let row = m.row_mut(i);
            for o in objs {
                row[o as usize] = 1.0;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_data::DatasetSplits;
    use hisres_graph::Tkg;

    fn tiny() -> DatasetSplits {
        let quads: Vec<Quad> = (0..20).map(|t| Quad::new(t % 4, 0, (t + 1) % 4, t)).collect();
        DatasetSplits::from_tkg("t", "1 step", &Tkg::new(4, 1, quads))
    }

    #[test]
    fn with_inverses_doubles_and_offsets() {
        let qs = with_inverses(&[Quad::new(0, 0, 1, 5)], 3);
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1], Quad::new(1, 3, 0, 5));
    }

    #[test]
    fn mask_matrix_marks_seen_objects() {
        let mut g = GlobalHistoryIndex::new();
        g.add_triple(0, 0, 2);
        let m = mask_matrix(&g, &[(0, 0), (1, 0)], 4);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[0.0; 4]);
    }

    #[test]
    fn train_static_reduces_loss() {
        // trivial model: a trainable [4*1*2 -> per-pair logit table]
        let mut store = ParamStore::new();
        let table = store.param("t", NdArray::zeros(8, 4)); // (s, r) pairs × entities
        let data = tiny();
        let fit = FitConfig { epochs: 30, lr: 0.1, ..Default::default() };
        let t2 = table.clone();
        train_static(&store, &data, &fit, 8, move |queries, _train, _rng| {
            let ids: Vec<u32> = queries.iter().map(|&(s, r)| s + 4 * r.min(1)).collect();
            t2.gather_rows(&ids)
        });
        // after training, the table rows should prefer the right objects:
        // relation 0 maps s -> s+1 mod 4
        let v = table.value_clone();
        for s in 0..4usize {
            let row = &v.as_slice()[s * 4..(s + 1) * 4];
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(best, (s + 1) % 4, "row {s}: {row:?}");
        }
    }

    #[test]
    fn train_sequential_visits_every_nonempty_snapshot() {
        let data = tiny();
        let mut store = ParamStore::new();
        let p = store.param("p", NdArray::scalar(0.0));
        let mut visits = 0usize;
        let fit = FitConfig { epochs: 2, ..Default::default() };
        train_sequential(&store, &data, &fit, |hist, target, _g, _rng| {
            visits += 1;
            assert!(!target.triples.is_empty());
            assert_eq!(hist.len(), target.t as usize);
            p.mul(&p) // dummy differentiable loss
        });
        // 16 train timestamps; t=0 skipped; 2 epochs
        assert_eq!(visits, 2 * (data.train.timestamps().len() - 1));
    }
}
