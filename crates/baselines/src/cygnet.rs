//! CyGNet (Zhu et al., AAAI 2021): sequential copy-generation networks.
//!
//! CyGNet predicts with a mixture of two modes over the entity vocabulary:
//! a **copy** mode that renormalises scores over the *historical
//! vocabulary* (objects seen with the query's `(s, r)` pair at any past
//! timestamp) and a **generation** mode over all entities. Both modes
//! score with a linear map of `[s ‖ r]`; the mixture weight λ is a fixed
//! hyper-parameter, as in the original.

use crate::util::{mask_matrix, train_sequential, FitConfig};
use hisres::{ExtrapolationModel, HistoryCtx};
use hisres_data::DatasetSplits;
use hisres_graph::GlobalHistoryIndex;
use hisres_nn::{Embedding, Linear};
use hisres_tensor::{no_grad, NdArray, ParamStore, Tensor};
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;

/// Logit offset used to exclude non-historical entities from copy mode.
const COPY_MASK_PENALTY: f32 = 30.0;

/// The copy-generation model.
pub struct CyGnet {
    /// All trainable parameters.
    pub store: ParamStore,
    ent: Embedding,
    rel: Embedding,
    copy_head: Linear,
    gen_head: Linear,
    /// Mixture weight of the copy mode (original default 0.5).
    pub lambda: f32,
    num_relations: usize,
}

impl CyGnet {
    /// Builds the model.
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ent = Embedding::new(&mut store, "ent", num_entities, dim, &mut rng);
        let rel = Embedding::new(&mut store, "rel", 2 * num_relations, dim, &mut rng);
        let copy_head = Linear::new(&mut store, "copy", 2 * dim, num_entities, true, &mut rng);
        let gen_head = Linear::new(&mut store, "gen", 2 * dim, num_entities, true, &mut rng);
        Self { store, ent, rel, copy_head, gen_head, lambda: 0.5, num_relations }
    }

    /// Mixture probabilities `[q, num_entities]` for a query batch given
    /// the historical vocabulary.
    pub fn probs(&self, queries: &[(u32, u32)], global: &GlobalHistoryIndex) -> Tensor {
        let s_ids: Vec<u32> = queries.iter().map(|&(s, _)| s).collect();
        let r_ids: Vec<u32> = queries.iter().map(|&(_, r)| r).collect();
        let feat = Tensor::concat_cols(&[&self.ent.lookup(&s_ids), &self.rel.lookup(&r_ids)]);
        let mask = mask_matrix(global, queries, self.ent.count());
        // copy: scores confined to the historical vocabulary
        let penalty = mask.map(|m| (m - 1.0) * COPY_MASK_PENALTY); // 0 on hist, -P elsewhere
        let copy_logits = self.copy_head.forward(&feat).add(&Tensor::constant(penalty));
        let gen_logits = self.gen_head.forward(&feat);
        let p_copy = copy_logits.softmax_rows();
        let p_gen = gen_logits.softmax_rows();
        p_copy.scale(self.lambda).add(&p_gen.scale(1.0 - self.lambda))
    }

    /// Fits the model sequentially over the timeline.
    pub fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
        let nr = self.num_relations as u32;
        let this: &CyGnet = self;
        train_sequential(&this.store, data, fit, |_hist, target, global, _rng| {
            let mut queries = Vec::with_capacity(target.triples.len() * 2);
            let mut targets = Vec::with_capacity(target.triples.len() * 2);
            for &(s, r, o) in &target.triples {
                queries.push((s, r));
                targets.push(o);
                queries.push((o, r + nr));
                targets.push(s);
            }
            this.probs(&queries, global).nll_of_probs(&targets)
        });
    }
}

impl ExtrapolationModel for CyGnet {
    fn name(&self) -> String {
        "CyGNet".into()
    }

    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        no_grad(|| self.probs(queries, ctx.global).value_clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres_graph::{Quad, Tkg};

    fn periodic_data() -> DatasetSplits {
        // entity s always maps to object s+5 under relation 0, every 2 steps
        let mut quads = Vec::new();
        for t in 0..40u32 {
            let s = t % 5;
            quads.push(Quad::new(s, 0, s + 5, t));
        }
        DatasetSplits::from_tkg("p", "1 step", &Tkg::new(10, 1, quads))
    }

    #[test]
    fn probs_are_normalised() {
        let m = CyGnet::new(6, 2, 8, 0);
        let mut g = GlobalHistoryIndex::new();
        g.add_triple(0, 0, 3);
        let p = m.probs(&[(0, 0), (1, 1)], &g);
        for i in 0..2 {
            let row_sum: f32 = p.value().row(i).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-4, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn copy_mode_concentrates_on_historical_objects() {
        let m = CyGnet::new(6, 1, 8, 1);
        let mut g = GlobalHistoryIndex::new();
        g.add_triple(0, 0, 4);
        let p = m.probs(&[(0, 0)], &g).value_clone();
        // with λ=0.5, the historical entity gets at least the copy mass
        assert!(p.get(0, 4) > 0.4, "historical mass {}", p.get(0, 4));
    }

    #[test]
    fn learns_repetitive_pattern() {
        let data = periodic_data();
        let mut m = CyGnet::new(10, 1, 8, 2);
        m.fit(&data, &FitConfig { epochs: 12, lr: 0.02, ..Default::default() });
        // history contains (3,0,8); the model should rank 8 first for (3,0)
        let mut g = GlobalHistoryIndex::new();
        for q in &data.train.quads {
            g.add_triple(q.s, q.r, q.o);
        }
        let p = m.probs(&[(3, 0)], &g);
        assert_eq!(p.value().argmax_rows(), vec![8]);
    }
}
