//! The Table 3 roster: every baseline behind one trait.

use crate::cenet::Cenet;
use crate::cygnet::CyGnet;
use crate::regcn::{Cen, SkeletonModel, TiRgn};
use crate::renet::ReNet;
use crate::retia_rpc::LineGraphModel;
use crate::static_kg::{StaticKg, StaticKind};
use crate::util::FitConfig;
use crate::xerte::Xerte;
use hisres::ExtrapolationModel;
use hisres_data::DatasetSplits;

/// A trainable Table 3 baseline.
pub trait Baseline: ExtrapolationModel {
    /// Trains the model on the dataset's training split.
    fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig);
}

macro_rules! impl_baseline {
    ($ty:ty) => {
        impl Baseline for $ty {
            fn fit(&mut self, data: &DatasetSplits, fit: &FitConfig) {
                <$ty>::fit(self, data, fit)
            }
        }
    };
}

impl_baseline!(StaticKg);
impl_baseline!(CyGnet);
impl_baseline!(Cenet);
impl_baseline!(ReNet);
impl_baseline!(SkeletonModel);
impl_baseline!(Cen);
impl_baseline!(TiRgn);
impl_baseline!(LineGraphModel);
impl_baseline!(Xerte);

/// Scale parameters shared by the whole roster.
#[derive(Clone, Copy, Debug)]
pub struct RosterConfig {
    /// Embedding width (even).
    pub dim: usize,
    /// History window for temporal models.
    pub history_len: usize,
    /// Parameter-init seed.
    pub seed: u64,
}

impl Default for RosterConfig {
    fn default() -> Self {
        Self { dim: 32, history_len: 3, seed: 2024 }
    }
}

/// Builds the full Table 3 baseline roster (paper row order), untrained.
pub fn all_baselines(ne: usize, nr: usize, rc: &RosterConfig) -> Vec<Box<dyn Baseline>> {
    let d = rc.dim;
    let l = rc.history_len;
    let s = rc.seed;
    vec![
        Box::new(StaticKg::new(StaticKind::DistMult, ne, nr, d, s)),
        Box::new(StaticKg::new(StaticKind::ComplEx, ne, nr, d, s + 1)),
        Box::new(StaticKg::new(StaticKind::ConvE, ne, nr, d, s + 2)),
        Box::new(StaticKg::new(StaticKind::ConvTransE, ne, nr, d, s + 3)),
        Box::new(StaticKg::new(StaticKind::RotatE, ne, nr, d, s + 4)),
        Box::new(ReNet::new(ne, nr, d, l, s + 5)),
        Box::new(CyGnet::new(ne, nr, d, s + 6)),
        Box::new(Xerte::new(ne, nr, d, l, s + 7)),
        Box::new(SkeletonModel::regcn(ne, nr, d, l, s + 8)),
        Box::new(Cen::new(ne, nr, d, l.max(3), s + 9)),
        Box::new(TiRgn::new(ne, nr, d, l, s + 10)),
        Box::new(Cenet::new(ne, nr, d, s + 11)),
        Box::new(LineGraphModel::retia(ne, nr, d, l, s + 12)),
        Box::new(LineGraphModel::rpc(ne, nr, d, l, s + 13)),
        Box::new(SkeletonModel::logcl(ne, nr, d, l, s + 14)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisres::HistoryCtx;
    use hisres_graph::{GlobalHistoryIndex, Quad, Snapshot, Tkg};

    #[test]
    fn roster_matches_table3_row_order() {
        let roster = all_baselines(10, 2, &RosterConfig { dim: 8, history_len: 2, seed: 0 });
        let names: Vec<String> = roster.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "DistMult", "ComplEx", "ConvE", "ConvTransE", "RotatE", "RE-NET", "CyGNet",
                "xERTE", "RE-GCN", "CEN", "TiRGN", "CENET", "RETIA", "RPC", "LogCL"
            ]
        );
    }

    #[test]
    fn every_roster_model_scores_correct_shape() {
        let roster = all_baselines(10, 2, &RosterConfig { dim: 8, history_len: 2, seed: 0 });
        let snaps = vec![
            Snapshot { t: 0, triples: vec![(0, 0, 1), (2, 1, 3)] },
            Snapshot { t: 1, triples: vec![(1, 0, 2)] },
        ];
        let mut global = GlobalHistoryIndex::new();
        for s in &snaps {
            global.add_snapshot(s, 2);
        }
        let ctx = HistoryCtx {
            snapshots: &snaps,
            t: 2,
            global: &global,
            num_entities: 10,
            num_relations: 2,
        };
        for m in &roster {
            let s = m.score(&ctx, &[(0, 0), (3, 3)]);
            assert_eq!(s.shape(), (2, 10), "model {}", m.name());
            assert!(!s.has_non_finite(), "model {}", m.name());
        }
    }

    #[test]
    fn roster_models_train_one_epoch() {
        let quads: Vec<Quad> = (0..30).map(|t| Quad::new(t % 5, t % 2, (t + 1) % 5, t)).collect();
        let data = hisres_data::DatasetSplits::from_tkg("t", "1 step", &Tkg::new(5, 2, quads));
        let mut roster = all_baselines(5, 2, &RosterConfig { dim: 8, history_len: 2, seed: 1 });
        let fit = FitConfig { epochs: 1, lr: 0.01, ..Default::default() };
        for m in &mut roster {
            m.fit(&data, &fit);
        }
    }
}
