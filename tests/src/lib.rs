//! Integration-test host crate for the HisRES workspace; tests live in `tests/tests/`.
