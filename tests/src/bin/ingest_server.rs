//! Ingest-serving helper for the crash-recovery integration tests.
//!
//! `tests/tests/ingest.rs` spawns this binary (cargo builds same-package
//! bins before integration tests, exposing the path as
//! `CARGO_BIN_EXE_ingest_server`), reads the bound port off the first
//! stdout line, streams `{"cmd":"ingest"}` batches at it, and SIGKILLs
//! it mid-stream. The model is built fresh from a fixed seed and the
//! base timeline is hard-coded, so every spawn is parameter-identical:
//! any divergence after a restart can only come from the WAL recovery
//! path under test.

use hisres::ingest::{IngestSession, IngestSessionConfig};
use hisres::serve::{serve_concurrent, ServeConfig, ServeEngine, ServerConfig, SessionScorer};
use hisres::{HisRes, HisResConfig, ScoreCtx};
use hisres_baselines::FrequencyScorer;
use hisres_graph::Quad;
use std::cell::RefCell;
use std::io::Write;
use std::process::ExitCode;
use std::rc::Rc;

const NE: usize = 8;
const NR: usize = 2;

/// Must stay in lockstep with `base_quads` in `tests/tests/ingest.rs`.
fn base_quads() -> Vec<Quad> {
    vec![
        Quad::new(0, 0, 1, 0),
        Quad::new(1, 1, 2, 0),
        Quad::new(2, 0, 3, 1),
        Quad::new(3, 1, 4, 2),
    ]
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut wal = None;
    let mut snapshot_every = 2u64;
    let mut max_ingest_queue = 8usize;
    let mut batch_window_ms = 1.0f64;
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = || -> Result<&str, String> {
            argv.get(i + 1).map(String::as_str).ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--wal" => wal = Some(std::path::PathBuf::from(value()?)),
            "--snapshot-every" => {
                snapshot_every =
                    value()?.parse().map_err(|_| format!("bad --snapshot-every"))?;
            }
            "--max-ingest-queue" => {
                max_ingest_queue =
                    value()?.parse().map_err(|_| format!("bad --max-ingest-queue"))?;
            }
            "--batch-window-ms" => {
                batch_window_ms =
                    value()?.parse().map_err(|_| format!("bad --batch-window-ms"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    let wal = wal.ok_or("--wal is required")?;

    let model_cfg =
        HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    let model = HisRes::new(&model_cfg, NE, NR);
    let ctx = ScoreCtx::from_quads(NE, NR, base_quads());
    let mut icfg = IngestSessionConfig::new(wal);
    icfg.snapshot_every = snapshot_every;
    let session = IngestSession::open(model, ctx, icfg).map_err(|e| e.to_string())?;
    eprintln!(
        "ingest_server: applied_seq {}, frontier t {}, resumed_from_snapshot {}",
        session.applied_seq(),
        session.frontier_t(),
        session.recovery().resumed_from_snapshot
    );
    let session = Rc::new(RefCell::new(session));
    let fallback = FrequencyScorer::from_quads(NE, NR, &base_quads());
    let engine = ServeEngine::new(
        ServeConfig::default(),
        NE,
        NR,
        Box::new(SessionScorer { session: session.clone() }),
        Box::new(fallback),
    )
    .with_ingest(session);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    println!("listening on {}", listener.local_addr().map_err(|e| e.to_string())?);
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let server_cfg = ServerConfig {
        workers: 2,
        max_queue: 64,
        batch_window_ms,
        max_connections: None,
        max_ingest_queue,
    };
    serve_concurrent(&engine, listener, &server_cfg).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ingest_server: {e}");
            ExitCode::FAILURE
        }
    }
}
