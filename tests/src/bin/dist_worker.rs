//! Worker-process helper for the distributed-training integration tests.
//!
//! `tests/tests/distributed.rs` runs the coordinator in-process and
//! spawns this binary as the worker fleet (cargo builds same-package
//! bins before integration tests, exposing the path as
//! `CARGO_BIN_EXE_dist_worker`). Besides a TSV directory, `--data`
//! accepts `syn:ENTITIES:RELATIONS:TIMESTAMPS:SEED` so the tests and the
//! workers can construct the identical in-memory synthetic dataset
//! without touching disk.

use hisres::dist::{run_worker, WorkerConfig};
use hisres_comms::NetFaultInjector;
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use std::process::ExitCode;

fn resolve_data(spec: &str) -> Result<DatasetSplits, String> {
    if let Some(rest) = spec.strip_prefix("syn:") {
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 4 {
            return Err(format!("--data {spec:?}: expected syn:E:R:T:SEED"));
        }
        let num = |i: usize| -> Result<usize, String> {
            parts[i].parse().map_err(|_| format!("--data {spec:?}: bad number {:?}", parts[i]))
        };
        let cfg = SyntheticConfig {
            num_entities: num(0)?,
            num_relations: num(1)?,
            num_timestamps: num(2)?,
            seed: num(3)? as u64,
            ..Default::default()
        };
        // must mirror the test helper exactly: same name, same granularity
        return Ok(DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg));
    }
    let path = std::path::Path::new(spec);
    if path.is_dir() {
        return hisres_data::loader::load_dir(path, spec, 1).map_err(|e| e.to_string());
    }
    Err(format!("--data {spec:?} is neither syn:… nor a directory"))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut data_spec = None;
    let mut connect = None;
    let mut worker_id = None;
    let mut die_on_step = None;
    let mut stall_after = None;
    let mut net_faults = NetFaultInjector::none();
    let mut verbose = true;
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = || -> Result<&str, String> {
            argv.get(i + 1).map(String::as_str).ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--data" => data_spec = Some(value()?.to_owned()),
            "--connect" => {
                connect =
                    Some(value()?.parse().map_err(|_| "--connect must be HOST:PORT".to_owned())?)
            }
            "--worker-id" => {
                worker_id =
                    Some(value()?.parse::<u32>().map_err(|_| "--worker-id: bad id".to_owned())?)
            }
            "--die-on-step" => {
                die_on_step = Some(
                    value()?.parse::<u64>().map_err(|_| "--die-on-step: bad step".to_owned())?,
                )
            }
            "--stall-heartbeats-after" => {
                stall_after = Some(
                    value()?
                        .parse::<u64>()
                        .map_err(|_| "--stall-heartbeats-after: bad count".to_owned())?,
                )
            }
            "--net-faults" => net_faults = NetFaultInjector::parse(value()?)?,
            "--quiet" => {
                verbose = false;
                i += 1;
                continue;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    let data = resolve_data(&data_spec.ok_or("--data is required")?)?;
    let wc = WorkerConfig {
        connect: connect.ok_or("--connect is required")?,
        worker_id: worker_id.ok_or("--worker-id is required")?,
        die_on_step,
        stall_heartbeats_after: stall_after,
        net_faults,
        verbose,
    };
    run_worker(&wc, &data).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dist_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
