//! Crash-safety integration tests: training state saves are atomic under
//! injected faults (torn writes, crashes before rename), the previous
//! state file always survives, and resuming from it reproduces the
//! uninterrupted run bit for bit.

use hisres::trainer::{train_with, TrainError, TrainOptions};
use hisres::{HisRes, HisResConfig, TrainCheckpoint, TrainConfig};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_util::fsio::{FaultInjector, FaultMode};

fn tiny_data() -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 16,
        num_relations: 3,
        num_timestamps: 20,
        seed: 5,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
}

fn tiny_model() -> HisRes {
    let cfg = HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    HisRes::new(&cfg, 16, 3)
}

fn tc(epochs: usize) -> TrainConfig {
    TrainConfig { epochs, patience: 2, ..Default::default() }
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hisres_crash_{tag}_{}.ckpt", std::process::id()))
}

/// Kills the state save of epoch `n` mid-write and checks that the state
/// of epoch `n - 1` survives intact and resumes to the same result as an
/// uninterrupted run.
fn crash_during_epoch_save(tag: &str, mode: FaultMode) {
    let data = tiny_data();

    let straight = tiny_model();
    let r_straight = train_with(&straight, &data, &tc(4), &TrainOptions::default()).unwrap();

    // the interrupted run: epoch-1 and epoch-2 saves succeed, the
    // epoch-3 save (write index 2, 0-based) dies mid-write
    let path = temp_path(tag);
    let crashed = tiny_model();
    let faults = FaultInjector::fail_nth_write(2, mode);
    let opts = TrainOptions {
        state_path: Some(path.clone()),
        faults: Some(&faults),
        ..Default::default()
    };
    match train_with(&crashed, &data, &tc(4), &opts) {
        Err(TrainError::Checkpoint(_)) => {}
        other => panic!("expected a checkpoint error from the injected fault, got {other:?}"),
    }

    // the previous (epoch 2) state file is intact: the envelope checksum
    // verifies and the content is the epoch-2 snapshot
    let ck = TrainCheckpoint::load(&path).unwrap();
    assert_eq!(ck.epoch, 2, "surviving state is the last completed save");
    assert_eq!(ck.epoch_losses.len(), 2);

    // resuming from the survivor reproduces the uninterrupted run exactly
    let resumed = ck.build_model().unwrap();
    let opts = TrainOptions { resume: Some(ck), ..Default::default() };
    let r_resumed = train_with(&resumed, &data, &tc(4), &opts).unwrap();
    std::fs::remove_file(&path).ok();

    let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&r_straight.epoch_losses), bits(&r_resumed.epoch_losses));
    assert_eq!(r_straight.best_val_mrr.to_bits(), r_resumed.best_val_mrr.to_bits());
    assert_eq!(straight.store.to_json(), resumed.store.to_json());
}

#[test]
fn torn_write_preserves_previous_state_and_resume_matches() {
    crash_during_epoch_save("torn", FaultMode::TornWrite(25));
}

#[test]
fn crash_before_rename_preserves_previous_state_and_resume_matches() {
    crash_during_epoch_save("rename", FaultMode::CrashBeforeRename);
}

#[test]
fn error_before_write_preserves_previous_state_and_resume_matches() {
    crash_during_epoch_save("ebw", FaultMode::ErrorBeforeWrite);
}

#[test]
fn first_save_crash_leaves_no_state_file() {
    let data = tiny_data();
    let model = tiny_model();
    let path = temp_path("first");
    let faults = FaultInjector::fail_nth_write(0, FaultMode::TornWrite(10));
    let opts = TrainOptions {
        state_path: Some(path.clone()),
        faults: Some(&faults),
        ..Default::default()
    };
    assert!(train_with(&model, &data, &tc(2), &opts).is_err());
    // nothing was renamed into place: no corrupt half-file to trip over
    assert!(!path.exists(), "torn first save must not appear at the final path");
}

#[test]
fn state_file_is_refreshed_every_epoch() {
    let data = tiny_data();
    let model = tiny_model();
    let path = temp_path("refresh");
    let opts = TrainOptions { state_path: Some(path.clone()), ..Default::default() };
    train_with(&model, &data, &tc(3), &opts).unwrap();
    let ck = TrainCheckpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(ck.epoch, 3);
    assert_eq!(ck.epoch_losses.len(), 3);
    assert_eq!(ck.rng_state.len(), 4);
}
