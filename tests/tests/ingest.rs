//! Durable online ingestion end to end: the `{"cmd":"ingest"}` protocol
//! through the serving engine, WAL fault drills (torn tail, corrupted
//! record), O(new)-work accounting, ingest backpressure over TCP, and
//! the kill -9 crash-recovery acceptance test against a real server
//! process (`tests/src/bin/ingest_server.rs`).

use hisres::ingest::{IngestSession, IngestSessionConfig};
use hisres::serve::{serve_concurrent, ServeConfig, ServeEngine, ServerConfig, SessionScorer};
use hisres::{HisRes, HisResConfig, ScoreCtx};
use hisres_baselines::FrequencyScorer;
use hisres_graph::Quad;
use hisres_util::fsio::{FaultInjector, FaultMode};
use hisres_util::json::{self, Value};
use hisres_util::wal;
use std::cell::RefCell;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::rc::Rc;

const NE: usize = 8;
const NR: usize = 2;

/// Must stay in lockstep with `base_quads` in
/// `tests/src/bin/ingest_server.rs`.
fn base_quads() -> Vec<Quad> {
    vec![
        Quad::new(0, 0, 1, 0),
        Quad::new(1, 1, 2, 0),
        Quad::new(2, 0, 3, 1),
        Quad::new(3, 1, 4, 2),
    ]
}

fn tmp_wal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hisres_ingest_it_{tag}_{}.wal", std::process::id()))
}

fn cleanup(cfg: &IngestSessionConfig) {
    std::fs::remove_file(&cfg.wal_path).ok();
    std::fs::remove_file(&cfg.state_path).ok();
}

fn tiny_model() -> HisRes {
    let cfg = HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    HisRes::new(&cfg, NE, NR)
}

fn open_session(cfg: &IngestSessionConfig) -> IngestSession {
    IngestSession::open(tiny_model(), ScoreCtx::from_quads(NE, NR, base_quads()), cfg.clone())
        .expect("ingest session opens")
}

/// Wraps a session the way `hisres serve --wal` does: the same `Rc` is
/// the full scorer and the engine's ingest sink.
fn engine_over(session: IngestSession) -> (ServeEngine, Rc<RefCell<IngestSession>>) {
    let session = Rc::new(RefCell::new(session));
    let engine = ServeEngine::new(
        ServeConfig::default(),
        NE,
        NR,
        Box::new(SessionScorer { session: session.clone() }),
        Box::new(FrequencyScorer::from_quads(NE, NR, &base_quads())),
    )
    .with_ingest(session.clone());
    (engine, session)
}

fn handle(engine: &ServeEngine, line: &str) -> Value {
    json::parse(&engine.handle_line(line).line).expect("reply must be valid JSON")
}

fn error_kind(v: &Value) -> Option<&str> {
    v.get("error")?.get("kind")?.as_str()
}

fn ingest_field(v: &Value) -> Option<&str> {
    v.get("ingest")?.as_str()
}

fn ingest_line(seq: u64, i: u32) -> String {
    let (s, r, o) = (i % NE as u32, i % NR as u32, (i + 1) % NE as u32);
    format!("{{\"cmd\":\"ingest\",\"seq\":{seq},\"quads\":[[{s},{r},{o}]],\"id\":\"q{seq}\"}}")
}

#[test]
fn ingest_protocol_applies_deduplicates_and_rejects_gaps() {
    let cfg = IngestSessionConfig::new(tmp_wal("proto"));
    cleanup(&cfg);
    let (engine, session) = engine_over(open_session(&cfg));

    let applied = handle(&engine, &ingest_line(1, 0));
    assert_eq!(ingest_field(&applied), Some("applied"), "{applied:?}");
    assert_eq!(applied.get("seq").and_then(Value::as_u64), Some(1));
    assert_eq!(applied.get("quads").and_then(Value::as_u64), Some(1));
    assert_eq!(applied.get("id").and_then(Value::as_str), Some("q1"));
    assert!(matches!(applied.get("snapshot_written"), Some(Value::Bool(_))));

    // Re-sending the same seq is an acknowledged no-op.
    let before = session.borrow().state_json();
    let dup = handle(&engine, &ingest_line(1, 0));
    assert_eq!(ingest_field(&dup), Some("duplicate"), "{dup:?}");
    assert_eq!(dup.get("applied_seq").and_then(Value::as_u64), Some(1));
    assert_eq!(session.borrow().state_json(), before);

    // A gap is a typed rejection and also a no-op.
    let gap = handle(&engine, &ingest_line(5, 1));
    assert_eq!(error_kind(&gap), Some("ingest_out_of_order"), "{gap:?}");
    assert_eq!(session.borrow().state_json(), before);

    // Malformed ingest bodies are bad_request, not panics.
    for line in [
        "{\"cmd\":\"ingest\"}",
        "{\"cmd\":\"ingest\",\"seq\":1}",
        "{\"cmd\":\"ingest\",\"seq\":-1,\"quads\":[]}",
        "{\"cmd\":\"ingest\",\"seq\":1,\"quads\":[[0,0]]}",
        "{\"cmd\":\"ingest\",\"seq\":1,\"quads\":[[0,0,\"x\"]]}",
        "{\"cmd\":\"ingest\",\"seq\":1,\"quads\":3}",
    ] {
        let v = handle(&engine, line);
        assert_eq!(error_kind(&v), Some("bad_request"), "{line} -> {v:?}");
    }

    // Out-of-vocabulary ids map to typed kinds.
    let v = handle(&engine, "{\"cmd\":\"ingest\",\"seq\":2,\"quads\":[[99,0,1]]}");
    assert_eq!(error_kind(&v), Some("entity_out_of_range"), "{v:?}");
    let v = handle(&engine, "{\"cmd\":\"ingest\",\"seq\":2,\"quads\":[[0,7,1]]}");
    assert_eq!(error_kind(&v), Some("bad_request"), "{v:?}");

    // Queries interleave with ingestion on the same engine.
    let q = handle(&engine, "{\"s\":0,\"r\":0,\"topk\":3}");
    assert!(matches!(q.get("ok"), Some(Value::Bool(true))), "{q:?}");
    cleanup(&cfg);
}

#[test]
fn engine_without_session_answers_ingest_unsupported() {
    let engine = ServeEngine::new(
        ServeConfig::default(),
        NE,
        NR,
        Box::new(FrequencyScorer::from_quads(NE, NR, &base_quads())),
        Box::new(FrequencyScorer::from_quads(NE, NR, &base_quads())),
    );
    let v = handle(&engine, &ingest_line(1, 0));
    assert_eq!(error_kind(&v), Some("ingest_unsupported"), "{v:?}");
}

#[test]
fn wal_failure_turns_read_only_and_stats_flag_it() {
    let cfg = IngestSessionConfig::new(tmp_wal("readonly"));
    cleanup(&cfg);
    let (engine, session) = engine_over(open_session(&cfg));
    assert_eq!(ingest_field(&handle(&engine, &ingest_line(1, 0))), Some("applied"));

    session
        .borrow_mut()
        .inject_wal_faults(FaultInjector::fail_nth_write(0, FaultMode::ErrorBeforeWrite));
    let v = handle(&engine, &ingest_line(2, 1));
    assert_eq!(error_kind(&v), Some("wal"), "{v:?}");
    let v = handle(&engine, &ingest_line(3, 2));
    assert_eq!(error_kind(&v), Some("read_only"), "{v:?}");

    // The degradation is visible in the stats block...
    let stats = handle(&engine, "{\"cmd\":\"stats\"}");
    let ing = stats.get("stats").and_then(|s| s.get("ingest")).expect("ingest stats");
    assert!(matches!(ing.get("read_only"), Some(Value::Bool(true))), "{ing:?}");
    assert_eq!(ing.get("applied_seq").and_then(Value::as_u64), Some(1));
    // ...and queries still answer.
    let q = handle(&engine, "{\"s\":0,\"r\":0}");
    assert!(matches!(q.get("ok"), Some(Value::Bool(true))), "{q:?}");
    cleanup(&cfg);
}

/// Drives `n` batches through a fresh session at `tag`, returning the
/// session (for state/score comparison) and its config.
fn ingested_session(tag: &str, n: u64) -> (IngestSession, IngestSessionConfig) {
    let cfg = IngestSessionConfig::new(tmp_wal(tag));
    cleanup(&cfg);
    let mut s = open_session(&cfg);
    for seq in 1..=n {
        s.ingest(seq, None, &[batch_triple(seq)]).expect("ingest applies");
    }
    (s, cfg)
}

fn batch_triple(seq: u64) -> (u32, u32, u32) {
    let i = (seq - 1) as u32;
    (i % NE as u32, i % NR as u32, (i + 1) % NE as u32)
}

#[test]
fn torn_wal_tail_is_discarded_and_recovery_matches_uninterrupted() {
    let (reference, cfg_ref) = ingested_session("torn_ref", 6);

    let cfg = IngestSessionConfig::new(tmp_wal("torn"));
    cleanup(&cfg);
    let mut s = open_session(&cfg);
    for seq in 1..=4u64 {
        s.ingest(seq, None, &[batch_triple(seq)]).expect("ingest applies");
    }
    drop(s);
    // A crash mid-append leaves a torn frame at the tail.
    let torn = wal::frame(b"payload that never finished writing");
    let mut f = std::fs::OpenOptions::new().append(true).open(&cfg.wal_path).unwrap();
    f.write_all(&torn[..torn.len() - 7]).unwrap();
    drop(f);

    let mut s = open_session(&cfg);
    assert!(s.recovery().truncated_bytes > 0, "torn tail must be counted");
    assert_eq!(s.applied_seq(), 4, "intact records all replay");
    for seq in 5..=6u64 {
        s.ingest(seq, None, &[batch_triple(seq)]).expect("ingest applies");
    }
    assert_eq!(s.state_json(), reference.state_json());
    let queries = [(0u32, 0u32), (3, 1), (5, 2)];
    assert_eq!(s.score(&queries), reference.score(&queries));
    cleanup(&cfg);
    cleanup(&cfg_ref);
}

#[test]
fn corrupted_wal_record_is_discarded_and_reingest_matches_uninterrupted() {
    let (reference, cfg_ref) = ingested_session("corrupt_ref", 6);

    let cfg = IngestSessionConfig::new(tmp_wal("corrupt"));
    cleanup(&cfg);
    let mut s = open_session(&cfg);
    for seq in 1..=4u64 {
        s.ingest(seq, None, &[batch_triple(seq)]).expect("ingest applies");
    }
    drop(s);
    // Flip the last payload byte: record 4's checksum no longer matches,
    // so the ingest session's Truncate policy cuts the log back to the
    // durable prefix (records 1..=3).
    let mut raw = std::fs::read(&cfg.wal_path).unwrap();
    let last = raw.len() - 1;
    raw[last] ^= 0x40;
    std::fs::write(&cfg.wal_path, &raw).unwrap();

    let mut s = open_session(&cfg);
    assert_eq!(s.applied_seq(), 3, "the corrupted record must not replay");
    assert!(s.recovery().truncated_bytes > 0);
    // The client re-sends from its own frontier; seq 4 applies fresh.
    for seq in 4..=6u64 {
        s.ingest(seq, None, &[batch_triple(seq)]).expect("ingest applies");
    }
    assert_eq!(s.state_json(), reference.state_json());
    let queries = [(0u32, 0u32), (3, 1), (5, 2)];
    assert_eq!(s.score(&queries), reference.score(&queries));
    cleanup(&cfg);
    cleanup(&cfg_ref);
}

#[test]
fn one_ingest_is_one_encoder_step_regardless_of_history_depth() {
    // A 40-snapshot base timeline, far longer than history_len = 3.
    let quads: Vec<Quad> =
        (0..40u32).map(|t| Quad::new(t % NE as u32, t % NR as u32, (t + 2) % NE as u32, t)).collect();
    let cfg = IngestSessionConfig::new(tmp_wal("onew"));
    cleanup(&cfg);
    let mut s =
        IngestSession::open(tiny_model(), ScoreCtx::from_quads(NE, NR, quads), cfg.clone())
            .expect("session opens");
    // Opening folds only the modeling window, not the whole timeline.
    assert_eq!(s.state().intra_steps, 3, "open is O(history_len), not O(history)");
    for seq in 1..=5u64 {
        let before = s.state().intra_steps;
        s.ingest(seq, None, &[batch_triple(seq)]).expect("ingest applies");
        assert_eq!(
            s.state().intra_steps,
            before + 1,
            "one new snapshot must cost exactly one encoder step"
        );
    }
    cleanup(&cfg);
}

#[test]
fn ingest_burst_is_bounded_by_typed_overloaded_rejections() {
    let cfg = IngestSessionConfig::new(tmp_wal("burst"));
    cleanup(&cfg);
    let (engine, _session) = engine_over(open_session(&cfg));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // One pipelined burst of 6 ingests into an in-flight budget of 1,
    // with a long batch window: while the first ingest waits in the
    // batcher, the rest must be refused at admission with a typed
    // overloaded error (never silently queued, never blocking readers).
    let client = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let mut burst = String::new();
        for seq in 1..=6u64 {
            burst.push_str(&ingest_line(seq, (seq - 1) as u32));
            burst.push('\n');
        }
        burst.push_str("{\"cmd\":\"shutdown\"}\n");
        stream.write_all(burst.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(stream)
            .lines()
            .map(|l| json::parse(&l.unwrap()).unwrap())
            .collect::<Vec<Value>>()
    });
    let server_cfg = ServerConfig {
        workers: 1,
        max_queue: 64,
        batch_window_ms: 300.0,
        max_connections: Some(1),
        max_ingest_queue: 1,
    };
    serve_concurrent(&engine, listener, &server_cfg).unwrap();
    let replies = client.join().unwrap();

    let applied = replies.iter().filter(|v| ingest_field(v) == Some("applied")).count();
    let overloaded =
        replies.iter().filter(|v| error_kind(v) == Some("overloaded")).count();
    let out_of_order =
        replies.iter().filter(|v| error_kind(v) == Some("ingest_out_of_order")).count();
    assert!(applied >= 1, "at least the first ingest applies: {replies:?}");
    assert!(overloaded >= 1, "the burst must trip the ingest budget: {replies:?}");
    assert_eq!(
        applied + overloaded + out_of_order,
        6,
        "every ingest gets a typed answer: {replies:?}"
    );
    cleanup(&cfg);
}

// ---- the kill -9 acceptance test --------------------------------------

struct ServerProc {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

fn spawn_server(wal: &std::path::Path) -> ServerProc {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_ingest_server"))
        .args(["--wal", wal.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn ingest_server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected server banner {line:?}"))
        .parse()
        .expect("parse bound address");
    ServerProc { child, addr }
}

struct Client {
    stream: std::net::TcpStream,
    reader: BufReader<std::net::TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        Client { reader: BufReader::new(stream.try_clone().unwrap()), stream }
    }
    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }
    fn rpc(&mut self, line: &str) -> Value {
        self.send(line);
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        json::parse(&reply).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
    }
}

const QUERY: &str = "{\"s\":0,\"r\":0,\"topk\":8}";

fn predictions(v: &Value) -> &Value {
    v.get("predictions").unwrap_or_else(|| panic!("no predictions in {v:?}"))
}

#[test]
fn killed_mid_ingest_server_restarts_to_byte_identical_scores() {
    let wal_a = tmp_wal("kill_ref");
    let wal_b = tmp_wal("kill");
    for p in [&wal_a, &wal_b] {
        cleanup(&IngestSessionConfig::new(p.clone()));
    }

    // Reference run: six batches, never interrupted.
    let mut server = spawn_server(&wal_a);
    let mut client = Client::connect(server.addr);
    for seq in 1..=6u64 {
        let v = client.rpc(&ingest_line(seq, (seq - 1) as u32));
        assert_eq!(ingest_field(&v), Some("applied"), "{v:?}");
    }
    let reference = client.rpc(QUERY);
    client.send("{\"cmd\":\"shutdown\"}");
    server.child.wait().expect("reference server exits");

    // Crash run: three acknowledged batches, then SIGKILL racing the
    // fourth — the kernel kills the process wherever it happens to be
    // (parsing, fsyncing, or advancing the encoder).
    let mut server = spawn_server(&wal_b);
    let mut client = Client::connect(server.addr);
    for seq in 1..=3u64 {
        let v = client.rpc(&ingest_line(seq, (seq - 1) as u32));
        assert_eq!(ingest_field(&v), Some("applied"), "{v:?}");
    }
    client.send(&ingest_line(4, 3));
    server.child.kill().expect("SIGKILL the server");
    server.child.wait().expect("killed server reaps");
    drop(client);

    // Restart over the same WAL. The client replays from its own
    // frontier: already-durable batches come back as duplicates, the
    // rest apply fresh — either way both runs converge on seq 6.
    let mut server = spawn_server(&wal_b);
    let mut client = Client::connect(server.addr);
    for seq in 1..=6u64 {
        let v = client.rpc(&ingest_line(seq, (seq - 1) as u32));
        assert!(
            matches!(ingest_field(&v), Some("applied") | Some("duplicate")),
            "replayed ingest must be applied or deduplicated: {v:?}"
        );
    }
    let recovered = client.rpc(QUERY);
    assert_eq!(
        predictions(&recovered),
        predictions(&reference),
        "recovered scores must be byte-identical to the uninterrupted run"
    );
    let stats = client.rpc("{\"cmd\":\"stats\"}");
    let ing = stats.get("stats").and_then(|s| s.get("ingest")).expect("ingest stats");
    assert_eq!(ing.get("applied_seq").and_then(Value::as_u64), Some(6));
    assert!(matches!(ing.get("read_only"), Some(Value::Bool(false))), "{ing:?}");
    client.send("{\"cmd\":\"shutdown\"}");
    server.child.wait().expect("recovered server exits");

    for p in [&wal_a, &wal_b] {
        cleanup(&IngestSessionConfig::new(p.clone()));
    }
}
