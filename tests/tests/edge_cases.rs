//! Degenerate and boundary inputs the full pipeline must survive.

use hisres::eval::{evaluate, Split};
use hisres::trainer::{train, HisResEval};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_data::DatasetSplits;
use hisres_graph::{Quad, Tkg};

fn small_model(ne: usize, nr: usize) -> HisRes {
    let cfg = HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    HisRes::new(&cfg, ne, nr)
}

#[test]
fn timeline_with_gaps_trains_and_evaluates() {
    // events only at every 4th timestamp: many empty snapshots in history
    let quads: Vec<Quad> = (0..15)
        .map(|i| Quad::new(i % 5, 0, (i + 2) % 5, i * 4))
        .collect();
    let data = DatasetSplits::from_tkg("gappy", "1 step", &Tkg::new(5, 1, quads));
    let model = small_model(5, 1);
    let tc = TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() };
    train(&model, &data, &tc).unwrap();
    let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    assert!(r.queries > 0);
    assert!(r.mrr.is_finite());
}

#[test]
fn single_relation_dataset_works() {
    let quads: Vec<Quad> = (0..30).map(|t| Quad::new(t % 6, 0, (t + 1) % 6, t)).collect();
    let data = DatasetSplits::from_tkg("onerel", "1 step", &Tkg::new(6, 1, quads));
    let model = small_model(6, 1);
    train(&model, &data, &TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
    let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    assert!(r.mrr > 0.0);
}

#[test]
fn two_entity_dataset_works() {
    let quads: Vec<Quad> = (0..20).map(|t| Quad::new(t % 2, t % 2, (t + 1) % 2, t)).collect();
    let data = DatasetSplits::from_tkg("two", "1 step", &Tkg::new(2, 2, quads));
    let model = small_model(2, 2);
    train(&model, &data, &TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
    let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    // with 2 entities, every rank is 1 or 2 — MRR at least 50
    assert!(r.mrr >= 50.0, "MRR {}", r.mrr);
}

#[test]
fn self_loop_events_are_handled() {
    // events where subject == object
    let quads: Vec<Quad> = (0..24).map(|t| Quad::new(t % 4, 0, t % 4, t)).collect();
    let data = DatasetSplits::from_tkg("selfloop", "1 step", &Tkg::new(4, 1, quads));
    let model = small_model(4, 1);
    train(&model, &data, &TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
    let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    assert!(r.mrr.is_finite());
}

#[test]
fn pruned_global_graph_respects_budget_end_to_end() {
    let quads: Vec<Quad> = (0..60)
        .map(|i| Quad::new(i % 6, i % 2, (i * 7 + 1) % 6, i / 2))
        .collect();
    let data = DatasetSplits::from_tkg("prune", "1 step", &Tkg::new(6, 2, quads));
    let cfg = HisResConfig {
        dim: 8,
        conv_channels: 2,
        history_len: 3,
        global_prune_topk: Some(1),
        ..Default::default()
    };
    let model = HisRes::new(&cfg, 6, 2);
    train(&model, &data, &TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
    let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    assert!(r.mrr.is_finite() && r.mrr > 0.0);
}

#[test]
fn history_shorter_than_window_is_fine() {
    // only 4 timestamps total but history_len = 3 and granularity 2
    let quads: Vec<Quad> = (0..8).map(|i| Quad::new(i % 3, 0, (i + 1) % 3, i / 2)).collect();
    let data = DatasetSplits::from_tkg("short", "1 step", &Tkg::new(3, 1, quads));
    let model = small_model(3, 1);
    train(&model, &data, &TrainConfig { epochs: 1, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
}

#[test]
fn granularity_larger_than_history_merges_everything() {
    let quads: Vec<Quad> = (0..30).map(|t| Quad::new(t % 5, 0, (t + 1) % 5, t)).collect();
    let data = DatasetSplits::from_tkg("bigg", "1 step", &Tkg::new(5, 1, quads));
    let cfg = HisResConfig {
        dim: 8,
        conv_channels: 2,
        history_len: 2,
        granularity: 10, // window far larger than history
        ..Default::default()
    };
    let model = HisRes::new(&cfg, 5, 1);
    train(&model, &data, &TrainConfig { epochs: 1, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
    let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    assert!(r.mrr.is_finite());
}
