//! Tests of the two-phase raw/inverse propagation mode (§4.1.3).

use hisres::eval::{evaluate, Split};
use hisres::trainer::{train, HisResEval};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;

fn data() -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 18,
        num_relations: 4,
        num_timestamps: 28,
        periodic_patterns: 10,
        period_range: (2, 6),
        causal_rules: 1,
        trigger_events_per_t: 2,
        recency_draws_per_t: 2,
        noise_events_per_t: 1,
        seed: 33,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tp", "1 step", &generate(&cfg).tkg)
}

fn model(two_phase: bool) -> HisRes {
    let cfg = HisResConfig {
        dim: 8,
        conv_channels: 2,
        history_len: 3,
        use_two_phase: two_phase,
        ..Default::default()
    };
    HisRes::new(&cfg, 18, 4)
}

#[test]
fn two_phase_mode_trains_and_evaluates() {
    let d = data();
    let m = model(true);
    let tc = TrainConfig { epochs: 3, lr: 0.01, patience: 0, ..Default::default() };
    let report = train(&m, &d, &tc).unwrap();
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(
        report.epoch_losses[2] < report.epoch_losses[0],
        "losses {:?}",
        report.epoch_losses
    );
    let r = evaluate(&HisResEval { model: &m }, &d, Split::Test);
    assert!(r.mrr > 0.0 && r.queries == 2 * d.test.len());
}

#[test]
fn two_phase_is_deterministic() {
    let d = data();
    let run = || {
        let m = model(true);
        train(&m, &d, &TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
        evaluate(&HisResEval { model: &m }, &d, Split::Test).mrr
    };
    assert_eq!(run(), run());
}

#[test]
fn modes_produce_different_but_comparable_results() {
    let d = data();
    let tc = TrainConfig { epochs: 4, lr: 0.01, patience: 0, ..Default::default() };
    let single = model(false);
    train(&single, &d, &tc).unwrap();
    let two = model(true);
    train(&two, &d, &tc).unwrap();
    let r1 = evaluate(&HisResEval { model: &single }, &d, Split::Test);
    let r2 = evaluate(&HisResEval { model: &two }, &d, Split::Test);
    // the modes differ (different graphs per phase) but both must learn
    assert_ne!(r1.mrr, r2.mrr);
    assert!(r1.mrr > 10.0 && r2.mrr > 10.0, "{} vs {}", r1.mrr, r2.mrr);
}

#[test]
fn untrained_two_phase_scoring_matches_single_phase_when_graphs_coincide() {
    // with the global encoder disabled, both modes encode identically, so
    // scores (and thus metrics) must agree exactly
    let d = data();
    let mk = |two_phase: bool| {
        let cfg = HisResConfig {
            dim: 8,
            conv_channels: 2,
            history_len: 3,
            use_global: false,
            use_two_phase: two_phase,
            ..Default::default()
        };
        HisRes::new(&cfg, 18, 4)
    };
    let a = evaluate(&HisResEval { model: &mk(false) }, &d, Split::Test);
    let b = evaluate(&HisResEval { model: &mk(true) }, &d, Split::Test);
    assert_eq!(a.mrr, b.mrr);
    assert_eq!(a.hits, b.hits);
}
