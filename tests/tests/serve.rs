//! End-to-end tests of the serving subsystem: request validation,
//! deadline degradation, panic isolation with poisoning, stats
//! accounting, retrying checkpoint loads, both transports, and the
//! concurrent front end (interleaved clients, admission-control
//! backpressure, shutdown draining).

use hisres::serve::{
    load_servable_model, serve_concurrent, serve_lines, serve_tcp, ModelScorer, ServeConfig,
    ServeEngine, ServeScorer, ServerConfig,
};
use hisres::{HisRes, HisResConfig, ScoreCtx, TrainCheckpoint};
use hisres_baselines::FrequencyScorer;
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_graph::Vocab;
use hisres_tensor::{AdamState, NdArray};
use hisres_util::fsio::FaultInjector;
use hisres_util::json::{self, Value};
use hisres_util::retry::BackoffPolicy;
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;
use std::time::Duration;

const NE: usize = 16;
const NR: usize = 3;

fn tiny_data() -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: NE,
        num_relations: NR,
        num_timestamps: 20,
        seed: 5,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
}

fn tiny_model() -> HisRes {
    let cfg = HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    HisRes::new(&cfg, NE, NR)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hisres_serve_{tag}_{}.ckpt", std::process::id()))
}

/// Deterministic stand-in for the full model: score of entity `o` is `o`.
struct RampScorer {
    ne: usize,
}

impl ServeScorer for RampScorer {
    fn name(&self) -> &str {
        "ramp"
    }
    fn score(&self, queries: &[(u32, u32)]) -> NdArray {
        let mut out = NdArray::zeros(queries.len(), self.ne);
        for q in 0..queries.len() {
            for (o, v) in out.row_mut(q).iter_mut().enumerate() {
                *v = o as f32;
            }
        }
        out
    }
}

/// A full scorer that always panics — the pathological query case.
struct PanickingScorer;

impl ServeScorer for PanickingScorer {
    fn name(&self) -> &str {
        "panicking"
    }
    fn score(&self, _queries: &[(u32, u32)]) -> NdArray {
        panic!("synthetic scorer failure")
    }
}

/// A full scorer that returns NaN — a silently corrupted checkpoint.
struct NanScorer {
    ne: usize,
}

impl ServeScorer for NanScorer {
    fn name(&self) -> &str {
        "nan"
    }
    fn score(&self, queries: &[(u32, u32)]) -> NdArray {
        NdArray::from_vec(vec![f32::NAN; queries.len() * self.ne], &[queries.len(), self.ne])
    }
}

fn fallback() -> Box<dyn ServeScorer> {
    Box::new(FrequencyScorer::from_quads(NE, NR, &tiny_data().all_quads()))
}

fn engine_with(full: Box<dyn ServeScorer>, cfg: ServeConfig) -> ServeEngine {
    ServeEngine::new(cfg, NE, NR, full, fallback())
}

fn handle(engine: &ServeEngine, line: &str) -> Value {
    json::parse(&engine.handle_line(line).line).expect("response must be valid JSON")
}

fn is_ok(v: &Value) -> bool {
    matches!(v.get("ok"), Some(Value::Bool(true)))
}

fn error_kind(v: &Value) -> Option<&str> {
    v.get("error")?.get("kind")?.as_str()
}

fn is_degraded(v: &Value) -> bool {
    matches!(v.get("degraded"), Some(Value::Bool(true)))
}

#[test]
fn validation_maps_every_failure_to_a_typed_kind() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let cases = [
        ("not json at all", "bad_json"),
        ("{\"s\": 1}", "bad_request"),                       // missing r
        ("{\"s\": 1, \"r\": 0, \"topk\": 0}", "bad_request"), // topk < 1
        ("{\"s\": 1, \"r\": 0, \"budget_ms\": -5}", "bad_request"),
        ("{\"s\": -3, \"r\": 0}", "bad_request"),             // negative id
        ("{\"s\": 9999, \"r\": 0}", "entity_out_of_range"),
        ("{\"s\": 1, \"r\": 777}", "relation_out_of_range"),
        ("{\"s\": \"Nobody\", \"r\": 0}", "unknown_entity"),  // no vocab loaded
        ("{\"s\": 1, \"r\": \"nothing\"}", "unknown_relation"),
        ("{\"cmd\": \"reboot\"}", "bad_request"),
        ("[1, 2, 3]", "bad_request"),                         // not an object
    ];
    for (line, want) in cases {
        let v = handle(&engine, line);
        assert!(!is_ok(&v), "{line} should fail");
        assert_eq!(error_kind(&v), Some(want), "for request {line}");
    }
    // every case above was counted under its kind
    let stats = engine.stats();
    assert_eq!(stats.requests, cases.len());
    assert_eq!(stats.error_total(), cases.len());
    assert_eq!(stats.ok, 0);
}

#[test]
fn valid_query_answers_with_ranked_predictions_and_echoed_id() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let v = handle(&engine, "{\"s\": 1, \"r\": 0, \"topk\": 3, \"id\": \"abc\"}");
    assert!(is_ok(&v), "{v:?}");
    assert!(!is_degraded(&v));
    assert_eq!(v.get("id").and_then(Value::as_str), Some("abc"));
    // RampScorer scores entity o as o: top three are the largest ids
    let preds = match v.get("predictions") {
        Some(Value::Arr(p)) => p,
        other => panic!("missing predictions: {other:?}"),
    };
    let ids: Vec<u64> = preds.iter().filter_map(|p| p.get("o")?.as_u64()).collect();
    assert_eq!(ids, vec![NE as u64 - 1, NE as u64 - 2, NE as u64 - 3]);
}

#[test]
fn name_lookup_works_once_vocabularies_are_attached() {
    let mut ents = Vocab::new();
    let mut rels = Vocab::new();
    for i in 0..NE {
        ents.intern(&format!("entity_{i}"));
    }
    for i in 0..NR {
        rels.intern(&format!("rel_{i}"));
    }
    let engine = ServeEngine::new(
        ServeConfig::default(),
        NE,
        NR,
        Box::new(RampScorer { ne: NE }),
        fallback(),
    )
    .with_vocabs(Some(ents), Some(rels));
    let v = handle(&engine, "{\"s\": \"entity_1\", \"r\": \"rel_0\", \"topk\": 1}");
    assert!(is_ok(&v), "{v:?}");
    let v = handle(&engine, "{\"s\": \"entity_99\", \"r\": \"rel_0\"}");
    assert_eq!(error_kind(&v), Some("unknown_entity"));
}

#[test]
fn zero_budget_degrades_to_the_fallback_scorer() {
    // per-request override of an unlimited server default
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let v = handle(&engine, "{\"s\": 1, \"r\": 0, \"budget_ms\": 0}");
    assert!(is_ok(&v), "{v:?}");
    assert!(is_degraded(&v), "{v:?}");
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("budget"));

    // server-wide zero default, no per-request field
    let cfg = ServeConfig { default_budget_ms: Some(0.0), ..Default::default() };
    let engine = engine_with(Box::new(RampScorer { ne: NE }), cfg);
    let v = handle(&engine, "{\"s\": 1, \"r\": 0}");
    assert!(is_degraded(&v), "{v:?}");
    assert_eq!(engine.stats().degraded, 1);
}

#[test]
fn nan_scores_degrade_instead_of_surfacing() {
    let engine = engine_with(Box::new(NanScorer { ne: NE }), ServeConfig::default());
    let v = handle(&engine, "{\"s\": 1, \"r\": 0}");
    assert!(is_ok(&v), "{v:?}");
    assert!(is_degraded(&v), "{v:?}");
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("invalid_scores"));
}

#[test]
fn panics_are_isolated_and_eventually_poison_the_engine() {
    let cfg = ServeConfig { max_panics: 2, ..Default::default() };
    let engine = engine_with(Box::new(PanickingScorer), cfg);

    // first two panics: each query still gets a degraded answer
    for _ in 0..2 {
        let v = handle(&engine, "{\"s\": 1, \"r\": 0}");
        assert!(is_ok(&v) && is_degraded(&v), "{v:?}");
        assert_eq!(v.get("reason").and_then(Value::as_str), Some("panic"));
    }
    assert!(engine.poisoned());

    // poisoned: the full scorer is never touched again
    let v = handle(&engine, "{\"s\": 1, \"r\": 0}");
    assert!(is_ok(&v) && is_degraded(&v), "{v:?}");
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("poisoned"));

    let stats = engine.stats();
    assert_eq!(stats.panics, 2, "the poisoned request must not re-panic");
    assert_eq!(stats.ok, 3);
    assert_eq!(stats.degraded, 3);
}

#[test]
fn stats_account_for_every_request_and_report_percentiles() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    for _ in 0..5 {
        handle(&engine, "{\"s\": 1, \"r\": 0}");
    }
    handle(&engine, "garbage");
    handle(&engine, "{\"s\": 1, \"r\": 0, \"budget_ms\": 0}");
    let v = handle(&engine, "{\"cmd\": \"stats\"}");
    assert!(is_ok(&v), "{v:?}");
    let stats = match v.get("stats") {
        Some(s) => s,
        None => panic!("missing stats block: {v:?}"),
    };
    assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(8));
    assert_eq!(stats.get("ok").and_then(Value::as_u64), Some(6));
    assert_eq!(stats.get("degraded").and_then(Value::as_u64), Some(1));
    assert_eq!(
        stats.get("errors").and_then(|e| e.get("bad_json")).and_then(Value::as_u64),
        Some(1)
    );
    assert!(stats.get("p50_ms").and_then(Value::as_f64).is_some());
    assert!(stats.get("p99_ms").and_then(Value::as_f64).is_some());
}

#[test]
fn serve_lines_replies_per_line_and_emits_final_stats() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let input = "{\"s\": 1, \"r\": 0}\n\n{\"bad\"\n{\"cmd\": \"shutdown\"}\n{\"s\": 2, \"r\": 0}\n";
    let mut out = Vec::new();
    serve_lines(&engine, input.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // query, bad json, shutdown ack, final stats — the post-shutdown query
    // is never processed
    assert_eq!(lines.len(), 4, "{text}");
    assert!(is_ok(&json::parse(lines[0]).unwrap()));
    assert_eq!(error_kind(&json::parse(lines[1]).unwrap()), Some("bad_json"));
    let stats = json::parse(lines[3]).unwrap();
    assert_eq!(
        stats.get("stats").and_then(|s| s.get("requests")).and_then(Value::as_u64),
        Some(3)
    );
}

#[test]
fn tcp_transport_round_trips_and_survives_client_hangup() {
    use std::io::{BufRead, BufReader, Write};
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let client = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"s\": 1, \"r\": 0, \"topk\": 2}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        // hang up without a clean shutdown — the server must survive
        reply
    });

    // the engine is deliberately !Send, so the server runs on the main
    // thread and the client on the spawned one
    serve_tcp(&engine, &listener, Some(1)).unwrap();
    let reply = client.join().unwrap();
    let v = json::parse(reply.trim()).unwrap();
    assert!(is_ok(&v), "{v:?}");
    assert_eq!(engine.stats().ok, 1);
}

/// A full scorer that takes a fixed wall-clock time per call — drives
/// the admission-control and budget-degradation tests deterministically.
struct SlowScorer {
    ne: usize,
    delay: Duration,
}

impl ServeScorer for SlowScorer {
    fn name(&self) -> &str {
        "slow"
    }
    fn score(&self, queries: &[(u32, u32)]) -> NdArray {
        std::thread::sleep(self.delay);
        let mut out = NdArray::zeros(queries.len(), self.ne);
        for q in 0..queries.len() {
            for (o, v) in out.row_mut(q).iter_mut().enumerate() {
                *v = o as f32;
            }
        }
        out
    }
}

/// Writes `lines` down one connection (optionally pacing them), half-closes
/// the write side, and returns every reply line parsed as JSON.
fn run_client(
    addr: std::net::SocketAddr,
    lines: Vec<String>,
    pace: Option<Duration>,
) -> Vec<Value> {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    for line in &lines {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        if let Some(d) = pace {
            stream.flush().unwrap();
            std::thread::sleep(d);
        }
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    BufReader::new(stream)
        .lines()
        .map(|l| {
            let l = l.unwrap();
            json::parse(&l).unwrap_or_else(|e| panic!("bad reply line {l:?}: {e}"))
        })
        .collect()
}

fn reply_id(v: &Value) -> Option<&str> {
    v.get("id").and_then(Value::as_str)
}

fn stats_of(v: &Value) -> &Value {
    match v.get("stats") {
        Some(s) => s,
        None => panic!("expected a stats line, got {v:?}"),
    }
}

#[test]
fn concurrent_clients_get_ordered_uncrossed_replies_and_stats_add_up() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 12;
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Interleaved mix per client: tagged valid queries, one bad-json line
    // and one out-of-range entity; client 3 paces its writes (the slow
    // client that must not stall anyone else).
    let client_lines = |c: usize| -> Vec<String> {
        (0..PER_CLIENT)
            .map(|i| match i {
                4 => "this is not json".to_owned(),
                8 => format!("{{\"s\": 9999, \"r\": 0, \"id\": \"c{c}-{i}\"}}"),
                _ => format!("{{\"s\": {}, \"r\": 0, \"topk\": 2, \"id\": \"c{c}-{i}\"}}", i % NE),
            })
            .collect()
    };
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let lines = client_lines(c);
            let pace = (c == 3).then(|| Duration::from_millis(2));
            std::thread::spawn(move || run_client(addr, lines, pace))
        })
        .collect();

    // The engine is !Send, so the batcher runs here on the main thread;
    // fewer workers than clients exercises connection queueing too.
    let cfg = ServerConfig {
        workers: 3,
        max_queue: 256,
        batch_window_ms: 1.0,
        max_connections: Some(CLIENTS),
        ..ServerConfig::default()
    };
    serve_concurrent(&engine, listener, &cfg).unwrap();

    for (c, client) in clients.into_iter().enumerate() {
        let replies = client.join().unwrap();
        // one reply per request line, plus the final stats line
        assert_eq!(replies.len(), PER_CLIENT + 1, "client {c}");
        for (i, v) in replies[..PER_CLIENT].iter().enumerate() {
            match i {
                4 => assert_eq!(error_kind(v), Some("bad_json"), "client {c} line {i}"),
                8 => {
                    assert_eq!(error_kind(v), Some("entity_out_of_range"), "client {c} line {i}");
                    // errors echo the id too: ordering is still checkable
                    assert_eq!(reply_id(v), Some(format!("c{c}-{i}").as_str()));
                }
                _ => {
                    assert!(is_ok(v), "client {c} line {i}: {v:?}");
                    // replies arrive in request order with the request's
                    // own id — no lost and no cross-wired responses
                    assert_eq!(reply_id(v), Some(format!("c{c}-{i}").as_str()));
                    let preds = match v.get("predictions") {
                        Some(Value::Arr(p)) => p,
                        other => panic!("missing predictions: {other:?}"),
                    };
                    let top: Vec<u64> =
                        preds.iter().filter_map(|p| p.get("o")?.as_u64()).collect();
                    assert_eq!(top, vec![NE as u64 - 1, NE as u64 - 2], "client {c} line {i}");
                }
            }
        }
        let stats = stats_of(&replies[PER_CLIENT]);
        assert!(stats.get("requests").and_then(Value::as_u64).is_some());
    }

    // totals add up across the whole run: every line of every client was
    // counted, nothing was rejected, nothing panicked
    let stats = engine.stats();
    assert_eq!(stats.requests, CLIENTS * PER_CLIENT);
    assert_eq!(stats.ok, CLIENTS * (PER_CLIENT - 2));
    assert_eq!(stats.error_total(), CLIENTS * 2);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.panics, 0);
}

#[test]
fn shutdown_drains_already_admitted_requests_before_exit() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // One pipelined burst: five queries then a shutdown command. The
    // queries are queued ahead of the shutdown, so every one must still
    // be answered before the server exits (the queue drains).
    let mut lines: Vec<String> =
        (0..5).map(|i| format!("{{\"s\": {i}, \"r\": 0, \"id\": \"q{i}\"}}")).collect();
    lines.push("{\"cmd\": \"shutdown\"}".to_owned());
    let client = std::thread::spawn(move || run_client(addr, lines, None));

    // no max_connections: the loop ends because the shutdown drains it
    let cfg = ServerConfig {
        workers: 2,
        max_queue: 64,
        batch_window_ms: 0.0,
        max_connections: None,
        ..ServerConfig::default()
    };
    serve_concurrent(&engine, listener, &cfg).unwrap();

    let replies = client.join().unwrap();
    // five answers, the shutdown ack, the final stats line
    assert_eq!(replies.len(), 7, "{replies:?}");
    for (i, v) in replies[..5].iter().enumerate() {
        assert!(is_ok(v), "query {i}: {v:?}");
        assert_eq!(reply_id(v), Some(format!("q{i}").as_str()));
    }
    assert_eq!(replies[5].get("shutdown"), Some(&Value::Bool(true)));
    let stats = stats_of(&replies[6]);
    assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(6));
    assert_eq!(stats.get("ok").and_then(Value::as_u64), Some(5));
}

#[test]
fn overload_rejects_with_typed_overloaded_and_never_panics() {
    const BURST: usize = 40;
    // Each full pass holds the batcher for a fixed wall-clock time, so a
    // fast pipelined burst must overflow the depth-1 queue.
    let engine = engine_with(
        Box::new(SlowScorer { ne: NE, delay: Duration::from_millis(15) }),
        ServeConfig::default(),
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let lines: Vec<String> =
        (0..BURST).map(|i| format!("{{\"s\": {}, \"r\": 0, \"id\": \"b{i}\"}}", i % NE)).collect();
    let client = std::thread::spawn(move || run_client(addr, lines, None));

    let cfg = ServerConfig {
        workers: 1,
        max_queue: 1,
        batch_window_ms: 0.0,
        max_connections: Some(1),
        ..ServerConfig::default()
    };
    serve_concurrent(&engine, listener, &cfg).unwrap();

    let replies = client.join().unwrap();
    assert_eq!(replies.len(), BURST + 1);
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for v in &replies[..BURST] {
        if is_ok(v) {
            ok += 1;
        } else {
            assert_eq!(error_kind(v), Some("overloaded"), "{v:?}");
            overloaded += 1;
        }
    }
    assert_eq!(ok + overloaded, BURST, "no reply may be lost");
    assert!(overloaded > 0, "a depth-1 queue must shed part of a {BURST}-deep burst");
    assert!(ok > 0, "admitted requests must still be answered");

    // the stats line and the engine agree: rejections are counted
    // separately from engine requests, and nothing panicked
    let stats = stats_of(&replies[BURST]);
    assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(ok as u64));
    assert_eq!(stats.get("rejected").and_then(Value::as_u64), Some(overloaded as u64));
    assert_eq!(stats.get("panics").and_then(Value::as_u64), Some(0));
    let engine_stats = engine.stats();
    assert_eq!(engine_stats.requests, ok);
    assert_eq!(engine_stats.rejected, overloaded);
    assert_eq!(engine_stats.panics, 0, "backpressure must not poison the engine");
    assert!(!engine.poisoned());
}

#[test]
fn degraded_fraction_is_monotone_under_a_shrinking_budget() {
    const QUERIES: usize = 10;
    let mut fractions = Vec::new();
    for budget_ms in [1e9, 2.0, 0.0] {
        let cfg = ServeConfig { default_budget_ms: Some(budget_ms), ..Default::default() };
        let engine =
            engine_with(Box::new(SlowScorer { ne: NE, delay: Duration::from_millis(5) }), cfg);
        engine.calibrate();
        assert!(engine.estimated_full_ms() >= 5.0, "calibration must see the 5 ms floor");
        for i in 0..QUERIES {
            let v = handle(&engine, &format!("{{\"s\": {}, \"r\": 0}}", i % NE));
            assert!(is_ok(&v), "{v:?}");
        }
        let stats = engine.stats();
        assert_eq!(stats.panics, 0, "budget degradation must not touch the poison counter");
        assert!(!engine.poisoned());
        fractions.push(stats.degraded as f64 / QUERIES as f64);
    }
    assert!(
        fractions.windows(2).all(|w| w[0] <= w[1]),
        "degraded fraction must not shrink as the budget shrinks: {fractions:?}"
    );
    assert_eq!(fractions[0], 0.0, "an effectively unlimited budget never degrades");
    assert_eq!(*fractions.last().unwrap(), 1.0, "a zero budget always degrades");
}

#[test]
fn batched_engine_replies_match_singleton_replies() {
    use hisres::serve::parse_request;
    use std::time::Instant;
    let lines = [
        "{\"s\": 1, \"r\": 0, \"topk\": 3, \"id\": \"a\"}",
        "not json",
        "{\"s\": 2, \"r\": 5, \"topk\": 2, \"id\": \"b\"}",
        "{\"s\": 9999, \"r\": 0, \"id\": \"c\"}",
        "{\"s\": 1, \"r\": 0, \"topk\": 3, \"id\": \"d\"}",
    ];
    let batched_engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let items = lines.iter().map(|l| (parse_request(l), Instant::now())).collect();
    let batched = batched_engine.handle_parsed_batch(items);

    let solo_engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    for (line, reply) in lines.iter().zip(&batched) {
        let b = json::parse(&reply.line).unwrap();
        let s = handle(&solo_engine, line);
        // identical up to timing: same status, id, error kind, predictions
        assert_eq!(is_ok(&b), is_ok(&s), "{line}");
        assert_eq!(reply_id(&b), reply_id(&s), "{line}");
        assert_eq!(error_kind(&b), error_kind(&s), "{line}");
        assert_eq!(b.get("predictions"), s.get("predictions"), "{line}");
        assert_eq!(b.get("degraded"), s.get("degraded"), "{line}");
    }
    // and the two engines' books agree
    let (b, s) = (batched_engine.stats(), solo_engine.stats());
    assert_eq!(b.requests, s.requests);
    assert_eq!(b.ok, s.ok);
    assert_eq!(b.errors, s.errors);
    assert_eq!(b.degraded, s.degraded);
}

#[test]
fn real_model_serves_end_to_end() {
    let data = tiny_data();
    let model = tiny_model();
    let ctx = ScoreCtx::at_end_of(&data);
    let engine = ServeEngine::new(
        ServeConfig::default(),
        NE,
        NR,
        Box::new(ModelScorer { model, ctx }),
        fallback(),
    );
    engine.calibrate();
    assert!(engine.estimated_full_ms() > 0.0);
    let v = handle(&engine, "{\"s\": 0, \"r\": 0, \"topk\": 5}");
    assert!(is_ok(&v), "{v:?}");
    assert!(!is_degraded(&v), "{v:?}");
    // and a tiny budget degrades the same engine
    let v = handle(&engine, "{\"s\": 0, \"r\": 0, \"budget_ms\": 0}");
    assert!(is_degraded(&v), "{v:?}");
}

#[test]
fn load_retries_ride_out_transient_read_faults() {
    let path = temp_path("retry_ok");
    tiny_model().save_checkpoint(&path).unwrap();
    let policy = BackoffPolicy {
        attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
    };
    let faults = FaultInjector::fail_first_reads(2);
    let model = load_servable_model(&path, &policy, &faults).unwrap();
    assert_eq!(model.num_entities(), NE);
    assert_eq!(faults.reads_attempted(), 3, "two failures, one success");

    // more faults than attempts: the typed error surfaces
    let faults = FaultInjector::fail_first_reads(5);
    let err = match load_servable_model(&path, &policy, &faults) {
        Err(e) => e,
        Ok(_) => panic!("load should exhaust its retries"),
    };
    assert!(err.to_string().contains("I/O"), "{err}");
    assert_eq!(faults.reads_attempted(), 3, "bounded: no retry storm");
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_accepts_training_state_files_preferring_best_params() {
    let model = tiny_model();
    let best = tiny_model();
    let ck = TrainCheckpoint {
        config: model.cfg.clone(),
        num_entities: NE,
        num_relations: NR,
        epoch: 2,
        since_best: 0,
        best_val_mrr: 0.5,
        epoch_losses: vec![1.0, 0.9],
        val_mrr: vec![0.4, 0.5],
        guard_events: Vec::new(),
        rng_state: StdRng::seed_from_u64(7)
            .state()
            .iter()
            .map(|w| format!("{w:016x}"))
            .collect(),
        opt: AdamState {
            t: 0,
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
        },
        params: model.store.to_json(),
        best_params: Some(best.store.to_json()),
    };
    let path = temp_path("from_state");
    ck.save(&path).unwrap();
    let loaded =
        load_servable_model(&path, &BackoffPolicy::default(), &FaultInjector::none()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.num_entities(), NE);
    // best_params (the `best` model's weights) won over params
    assert_eq!(loaded.store.to_json(), best.store.to_json());
}

#[test]
fn load_rejects_unrelated_envelope_kinds() {
    let path = temp_path("wrong_kind");
    let sealed = hisres_util::fsio::seal("weird-kind", "{}");
    std::fs::write(&path, sealed).unwrap();
    let err = match load_servable_model(&path, &BackoffPolicy::default(), &FaultInjector::none())
    {
        Err(e) => e,
        Ok(_) => panic!("wrong-kind envelope should be rejected"),
    };
    std::fs::remove_file(&path).ok();
    assert!(err.to_string().contains("kind"), "{err}");
}
