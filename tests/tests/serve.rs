//! End-to-end tests of the serving subsystem: request validation,
//! deadline degradation, panic isolation with poisoning, stats
//! accounting, retrying checkpoint loads, and both transports.

use hisres::serve::{
    load_servable_model, serve_lines, serve_tcp, ModelScorer, ServeConfig, ServeEngine,
    ServeScorer,
};
use hisres::{HisRes, HisResConfig, ScoreCtx, TrainCheckpoint};
use hisres_baselines::FrequencyScorer;
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_graph::Vocab;
use hisres_tensor::{AdamState, NdArray};
use hisres_util::fsio::FaultInjector;
use hisres_util::json::{self, Value};
use hisres_util::retry::BackoffPolicy;
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::SeedableRng;
use std::time::Duration;

const NE: usize = 16;
const NR: usize = 3;

fn tiny_data() -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: NE,
        num_relations: NR,
        num_timestamps: 20,
        seed: 5,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
}

fn tiny_model() -> HisRes {
    let cfg = HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    HisRes::new(&cfg, NE, NR)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hisres_serve_{tag}_{}.ckpt", std::process::id()))
}

/// Deterministic stand-in for the full model: score of entity `o` is `o`.
struct RampScorer {
    ne: usize,
}

impl ServeScorer for RampScorer {
    fn name(&self) -> &str {
        "ramp"
    }
    fn score(&self, queries: &[(u32, u32)]) -> NdArray {
        let mut out = NdArray::zeros(queries.len(), self.ne);
        for q in 0..queries.len() {
            for (o, v) in out.row_mut(q).iter_mut().enumerate() {
                *v = o as f32;
            }
        }
        out
    }
}

/// A full scorer that always panics — the pathological query case.
struct PanickingScorer;

impl ServeScorer for PanickingScorer {
    fn name(&self) -> &str {
        "panicking"
    }
    fn score(&self, _queries: &[(u32, u32)]) -> NdArray {
        panic!("synthetic scorer failure")
    }
}

/// A full scorer that returns NaN — a silently corrupted checkpoint.
struct NanScorer {
    ne: usize,
}

impl ServeScorer for NanScorer {
    fn name(&self) -> &str {
        "nan"
    }
    fn score(&self, queries: &[(u32, u32)]) -> NdArray {
        NdArray::from_vec(vec![f32::NAN; queries.len() * self.ne], &[queries.len(), self.ne])
    }
}

fn fallback() -> Box<dyn ServeScorer> {
    Box::new(FrequencyScorer::from_quads(NE, NR, &tiny_data().all_quads()))
}

fn engine_with(full: Box<dyn ServeScorer>, cfg: ServeConfig) -> ServeEngine {
    ServeEngine::new(cfg, NE, NR, full, fallback())
}

fn handle(engine: &ServeEngine, line: &str) -> Value {
    json::parse(&engine.handle_line(line).line).expect("response must be valid JSON")
}

fn is_ok(v: &Value) -> bool {
    matches!(v.get("ok"), Some(Value::Bool(true)))
}

fn error_kind(v: &Value) -> Option<&str> {
    v.get("error")?.get("kind")?.as_str()
}

fn is_degraded(v: &Value) -> bool {
    matches!(v.get("degraded"), Some(Value::Bool(true)))
}

#[test]
fn validation_maps_every_failure_to_a_typed_kind() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let cases = [
        ("not json at all", "bad_json"),
        ("{\"s\": 1}", "bad_request"),                       // missing r
        ("{\"s\": 1, \"r\": 0, \"topk\": 0}", "bad_request"), // topk < 1
        ("{\"s\": 1, \"r\": 0, \"budget_ms\": -5}", "bad_request"),
        ("{\"s\": -3, \"r\": 0}", "bad_request"),             // negative id
        ("{\"s\": 9999, \"r\": 0}", "entity_out_of_range"),
        ("{\"s\": 1, \"r\": 777}", "relation_out_of_range"),
        ("{\"s\": \"Nobody\", \"r\": 0}", "unknown_entity"),  // no vocab loaded
        ("{\"s\": 1, \"r\": \"nothing\"}", "unknown_relation"),
        ("{\"cmd\": \"reboot\"}", "bad_request"),
        ("[1, 2, 3]", "bad_request"),                         // not an object
    ];
    for (line, want) in cases {
        let v = handle(&engine, line);
        assert!(!is_ok(&v), "{line} should fail");
        assert_eq!(error_kind(&v), Some(want), "for request {line}");
    }
    // every case above was counted under its kind
    let stats = engine.stats();
    assert_eq!(stats.requests, cases.len());
    assert_eq!(stats.error_total(), cases.len());
    assert_eq!(stats.ok, 0);
}

#[test]
fn valid_query_answers_with_ranked_predictions_and_echoed_id() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let v = handle(&engine, "{\"s\": 1, \"r\": 0, \"topk\": 3, \"id\": \"abc\"}");
    assert!(is_ok(&v), "{v:?}");
    assert!(!is_degraded(&v));
    assert_eq!(v.get("id").and_then(Value::as_str), Some("abc"));
    // RampScorer scores entity o as o: top three are the largest ids
    let preds = match v.get("predictions") {
        Some(Value::Arr(p)) => p,
        other => panic!("missing predictions: {other:?}"),
    };
    let ids: Vec<u64> = preds.iter().filter_map(|p| p.get("o")?.as_u64()).collect();
    assert_eq!(ids, vec![NE as u64 - 1, NE as u64 - 2, NE as u64 - 3]);
}

#[test]
fn name_lookup_works_once_vocabularies_are_attached() {
    let mut ents = Vocab::new();
    let mut rels = Vocab::new();
    for i in 0..NE {
        ents.intern(&format!("entity_{i}"));
    }
    for i in 0..NR {
        rels.intern(&format!("rel_{i}"));
    }
    let engine = ServeEngine::new(
        ServeConfig::default(),
        NE,
        NR,
        Box::new(RampScorer { ne: NE }),
        fallback(),
    )
    .with_vocabs(Some(ents), Some(rels));
    let v = handle(&engine, "{\"s\": \"entity_1\", \"r\": \"rel_0\", \"topk\": 1}");
    assert!(is_ok(&v), "{v:?}");
    let v = handle(&engine, "{\"s\": \"entity_99\", \"r\": \"rel_0\"}");
    assert_eq!(error_kind(&v), Some("unknown_entity"));
}

#[test]
fn zero_budget_degrades_to_the_fallback_scorer() {
    // per-request override of an unlimited server default
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let v = handle(&engine, "{\"s\": 1, \"r\": 0, \"budget_ms\": 0}");
    assert!(is_ok(&v), "{v:?}");
    assert!(is_degraded(&v), "{v:?}");
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("budget"));

    // server-wide zero default, no per-request field
    let cfg = ServeConfig { default_budget_ms: Some(0.0), ..Default::default() };
    let engine = engine_with(Box::new(RampScorer { ne: NE }), cfg);
    let v = handle(&engine, "{\"s\": 1, \"r\": 0}");
    assert!(is_degraded(&v), "{v:?}");
    assert_eq!(engine.stats().degraded, 1);
}

#[test]
fn nan_scores_degrade_instead_of_surfacing() {
    let engine = engine_with(Box::new(NanScorer { ne: NE }), ServeConfig::default());
    let v = handle(&engine, "{\"s\": 1, \"r\": 0}");
    assert!(is_ok(&v), "{v:?}");
    assert!(is_degraded(&v), "{v:?}");
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("invalid_scores"));
}

#[test]
fn panics_are_isolated_and_eventually_poison_the_engine() {
    let cfg = ServeConfig { max_panics: 2, ..Default::default() };
    let engine = engine_with(Box::new(PanickingScorer), cfg);

    // first two panics: each query still gets a degraded answer
    for _ in 0..2 {
        let v = handle(&engine, "{\"s\": 1, \"r\": 0}");
        assert!(is_ok(&v) && is_degraded(&v), "{v:?}");
        assert_eq!(v.get("reason").and_then(Value::as_str), Some("panic"));
    }
    assert!(engine.poisoned());

    // poisoned: the full scorer is never touched again
    let v = handle(&engine, "{\"s\": 1, \"r\": 0}");
    assert!(is_ok(&v) && is_degraded(&v), "{v:?}");
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("poisoned"));

    let stats = engine.stats();
    assert_eq!(stats.panics, 2, "the poisoned request must not re-panic");
    assert_eq!(stats.ok, 3);
    assert_eq!(stats.degraded, 3);
}

#[test]
fn stats_account_for_every_request_and_report_percentiles() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    for _ in 0..5 {
        handle(&engine, "{\"s\": 1, \"r\": 0}");
    }
    handle(&engine, "garbage");
    handle(&engine, "{\"s\": 1, \"r\": 0, \"budget_ms\": 0}");
    let v = handle(&engine, "{\"cmd\": \"stats\"}");
    assert!(is_ok(&v), "{v:?}");
    let stats = match v.get("stats") {
        Some(s) => s,
        None => panic!("missing stats block: {v:?}"),
    };
    assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(8));
    assert_eq!(stats.get("ok").and_then(Value::as_u64), Some(6));
    assert_eq!(stats.get("degraded").and_then(Value::as_u64), Some(1));
    assert_eq!(
        stats.get("errors").and_then(|e| e.get("bad_json")).and_then(Value::as_u64),
        Some(1)
    );
    assert!(stats.get("p50_ms").and_then(Value::as_f64).is_some());
    assert!(stats.get("p99_ms").and_then(Value::as_f64).is_some());
}

#[test]
fn serve_lines_replies_per_line_and_emits_final_stats() {
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let input = "{\"s\": 1, \"r\": 0}\n\n{\"bad\"\n{\"cmd\": \"shutdown\"}\n{\"s\": 2, \"r\": 0}\n";
    let mut out = Vec::new();
    serve_lines(&engine, input.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // query, bad json, shutdown ack, final stats — the post-shutdown query
    // is never processed
    assert_eq!(lines.len(), 4, "{text}");
    assert!(is_ok(&json::parse(lines[0]).unwrap()));
    assert_eq!(error_kind(&json::parse(lines[1]).unwrap()), Some("bad_json"));
    let stats = json::parse(lines[3]).unwrap();
    assert_eq!(
        stats.get("stats").and_then(|s| s.get("requests")).and_then(Value::as_u64),
        Some(3)
    );
}

#[test]
fn tcp_transport_round_trips_and_survives_client_hangup() {
    use std::io::{BufRead, BufReader, Write};
    let engine = engine_with(Box::new(RampScorer { ne: NE }), ServeConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let client = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"s\": 1, \"r\": 0, \"topk\": 2}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        // hang up without a clean shutdown — the server must survive
        reply
    });

    // the engine is deliberately !Send, so the server runs on the main
    // thread and the client on the spawned one
    serve_tcp(&engine, &listener, Some(1)).unwrap();
    let reply = client.join().unwrap();
    let v = json::parse(reply.trim()).unwrap();
    assert!(is_ok(&v), "{v:?}");
    assert_eq!(engine.stats().ok, 1);
}

#[test]
fn real_model_serves_end_to_end() {
    let data = tiny_data();
    let model = tiny_model();
    let ctx = ScoreCtx::at_end_of(&data);
    let engine = ServeEngine::new(
        ServeConfig::default(),
        NE,
        NR,
        Box::new(ModelScorer { model, ctx }),
        fallback(),
    );
    engine.calibrate();
    assert!(engine.estimated_full_ms() > 0.0);
    let v = handle(&engine, "{\"s\": 0, \"r\": 0, \"topk\": 5}");
    assert!(is_ok(&v), "{v:?}");
    assert!(!is_degraded(&v), "{v:?}");
    // and a tiny budget degrades the same engine
    let v = handle(&engine, "{\"s\": 0, \"r\": 0, \"budget_ms\": 0}");
    assert!(is_degraded(&v), "{v:?}");
}

#[test]
fn load_retries_ride_out_transient_read_faults() {
    let path = temp_path("retry_ok");
    tiny_model().save_checkpoint(&path).unwrap();
    let policy = BackoffPolicy {
        attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
    };
    let faults = FaultInjector::fail_first_reads(2);
    let model = load_servable_model(&path, &policy, &faults).unwrap();
    assert_eq!(model.num_entities(), NE);
    assert_eq!(faults.reads_attempted(), 3, "two failures, one success");

    // more faults than attempts: the typed error surfaces
    let faults = FaultInjector::fail_first_reads(5);
    let err = match load_servable_model(&path, &policy, &faults) {
        Err(e) => e,
        Ok(_) => panic!("load should exhaust its retries"),
    };
    assert!(err.to_string().contains("I/O"), "{err}");
    assert_eq!(faults.reads_attempted(), 3, "bounded: no retry storm");
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_accepts_training_state_files_preferring_best_params() {
    let model = tiny_model();
    let best = tiny_model();
    let ck = TrainCheckpoint {
        config: model.cfg.clone(),
        num_entities: NE,
        num_relations: NR,
        epoch: 2,
        since_best: 0,
        best_val_mrr: 0.5,
        epoch_losses: vec![1.0, 0.9],
        val_mrr: vec![0.4, 0.5],
        guard_events: Vec::new(),
        rng_state: StdRng::seed_from_u64(7)
            .state()
            .iter()
            .map(|w| format!("{w:016x}"))
            .collect(),
        opt: AdamState {
            t: 0,
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
        },
        params: model.store.to_json(),
        best_params: Some(best.store.to_json()),
    };
    let path = temp_path("from_state");
    ck.save(&path).unwrap();
    let loaded =
        load_servable_model(&path, &BackoffPolicy::default(), &FaultInjector::none()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.num_entities(), NE);
    // best_params (the `best` model's weights) won over params
    assert_eq!(loaded.store.to_json(), best.store.to_json());
}

#[test]
fn load_rejects_unrelated_envelope_kinds() {
    let path = temp_path("wrong_kind");
    let sealed = hisres_util::fsio::seal("weird-kind", "{}");
    std::fs::write(&path, sealed).unwrap();
    let err = match load_servable_model(&path, &BackoffPolicy::default(), &FaultInjector::none())
    {
        Err(e) => e,
        Ok(_) => panic!("wrong-kind envelope should be rejected"),
    };
    std::fs::remove_file(&path).ok();
    assert!(err.to_string().contains("kind"), "{err}");
}
