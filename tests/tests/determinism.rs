//! Bit-level determinism of the whole stack: with all randomness flowing
//! from the in-workspace PRNG, two runs from the same seeds must agree
//! exactly — on every parameter bit and on every evaluation number.

use hisres::eval::{evaluate, Split};
use hisres::trainer::{train, HisResEval};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_util::pool::with_threads;

fn tiny_data(seed: u64) -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 20,
        num_relations: 4,
        num_timestamps: 25,
        periodic_patterns: 10,
        period_range: (3, 8),
        causal_rules: 1,
        trigger_events_per_t: 2,
        recency_draws_per_t: 2,
        noise_events_per_t: 1,
        seed,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
}

fn tiny_model(seed: u64) -> HisRes {
    let cfg = HisResConfig {
        dim: 8,
        conv_channels: 2,
        history_len: 3,
        seed,
        ..Default::default()
    };
    HisRes::new(&cfg, 20, 4)
}

#[test]
fn same_seed_builds_bit_identical_parameter_stores() {
    let a = tiny_model(11);
    let b = tiny_model(11);
    // the JSON checkpoint serialises every f32 exactly (shortest round-trip
    // formatting), so equal text means equal bits in every parameter
    assert_eq!(a.store.to_json(), b.store.to_json());

    let c = tiny_model(12);
    assert_ne!(a.store.to_json(), c.store.to_json(), "sanity: seeds differ");
}

#[test]
fn same_seed_training_and_eval_are_bit_identical() {
    let data = tiny_data(13);
    let run = |data: &DatasetSplits| {
        let model = tiny_model(14);
        let tc = TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() };
        let report = train(&model, data, &tc).unwrap();
        let eval = evaluate(&HisResEval { model: &model }, data, Split::Test);
        (model.store.to_json(), report.epoch_losses, eval.mrr, eval.hits)
    };
    let (params_a, losses_a, mrr_a, hits_a) = run(&data);
    let (params_b, losses_b, mrr_b, hits_b) = run(&data);
    assert_eq!(params_a, params_b, "trained parameters must be bit-identical");
    assert_eq!(losses_a, losses_b);
    assert_eq!(mrr_a.to_bits(), mrr_b.to_bits(), "MRR must match to the last bit");
    assert_eq!(hits_a, hits_b);
}

#[test]
fn thread_count_never_changes_training_or_eval() {
    // The data-parallel kernel layer must be invisible in the numbers:
    // training + evaluation at 1, 2 and 7 worker threads produce the same
    // parameter bits, the same losses and the same metrics.
    let data = tiny_data(13);
    let run = |threads: usize| {
        with_threads(threads, || {
            let model = tiny_model(14);
            let tc = TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() };
            let report = train(&model, &data, &tc).unwrap();
            let eval = evaluate(&HisResEval { model: &model }, &data, Split::Test);
            (model.store.to_json(), report.epoch_losses, eval.mrr.to_bits(), eval.hits)
        })
    };
    let baseline = run(1);
    for threads in [2, 7] {
        let got = run(threads);
        assert_eq!(baseline.0, got.0, "{threads}-thread parameters diverged");
        assert_eq!(baseline.1, got.1, "{threads}-thread losses diverged");
        assert_eq!(baseline.2, got.2, "{threads}-thread MRR diverged");
        assert_eq!(baseline.3, got.3, "{threads}-thread hits diverged");
    }
}
