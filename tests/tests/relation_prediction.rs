//! Tests of the relation-prediction task (the second term of eq. 15).

use hisres::eval::{evaluate, evaluate_relations, Split};
use hisres::trainer::{train, HisResEval};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;

fn data() -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 18,
        num_relations: 4,
        num_timestamps: 30,
        periodic_patterns: 10,
        period_range: (2, 6),
        causal_rules: 1,
        trigger_events_per_t: 2,
        recency_draws_per_t: 2,
        noise_events_per_t: 1,
        seed: 21,
        ..Default::default()
    };
    DatasetSplits::from_tkg("rel-test", "1 step", &generate(&cfg).tkg)
}

#[test]
fn relation_metrics_are_well_formed() {
    let d = data();
    let cfg = HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    let model = HisRes::new(&cfg, 18, 4);
    let r = evaluate_relations(&model, &d, Split::Test);
    assert_eq!(r.queries, 2 * d.test.len());
    assert!(r.mrr > 0.0 && r.mrr <= 100.0);
    assert!(r.hits[0] <= r.hits[1] && r.hits[1] <= r.hits[2]);
}

#[test]
fn training_improves_relation_prediction_too() {
    // the joint objective trains both heads, so relation MRR should also
    // move above an untrained model's
    let d = data();
    let cfg = HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    let untrained = HisRes::new(&cfg, 18, 4);
    let before = evaluate_relations(&untrained, &d, Split::Test);

    let trained = HisRes::new(&cfg, 18, 4);
    train(&trained, &d, &TrainConfig { epochs: 6, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
    let after = evaluate_relations(&trained, &d, Split::Test);
    assert!(
        after.mrr > before.mrr,
        "relation MRR did not improve: {:.2} -> {:.2}",
        before.mrr,
        after.mrr
    );
}

#[test]
fn alpha_trades_off_the_two_tasks() {
    // α = 1 ignores the relation task entirely; α = 0.5 trains it harder.
    // The relation-heavy model must do at least as well on relations.
    let d = data();
    let mk = |alpha: f32| {
        let cfg = HisResConfig {
            dim: 8,
            conv_channels: 2,
            history_len: 3,
            alpha,
            ..Default::default()
        };
        let m = HisRes::new(&cfg, 18, 4);
        train(&m, &d, &TrainConfig { epochs: 6, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
        m
    };
    let entity_only = mk(1.0);
    let joint = mk(0.5);
    let rel_entity_only = evaluate_relations(&entity_only, &d, Split::Test);
    let rel_joint = evaluate_relations(&joint, &d, Split::Test);
    assert!(
        rel_joint.mrr > rel_entity_only.mrr,
        "joint training {:.2} should beat entity-only {:.2} on relations",
        rel_joint.mrr,
        rel_entity_only.mrr
    );
    // and both still function on entities
    let ent = evaluate(&HisResEval { model: &joint }, &d, Split::Test);
    assert!(ent.mrr > 0.0);
}
