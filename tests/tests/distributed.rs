//! Fault-injection battery for distributed training.
//!
//! The coordinator runs in-process; workers are real OS processes (the
//! `dist_worker` helper bin of this package). The invariant under test
//! everywhere: the sync-mode distributed run ends **byte-identical** to
//! uninterrupted single-process training — including when a worker is
//! SIGKILLed mid-epoch, a frame is torn or corrupted on the wire, or a
//! heartbeat goes silent.

use hisres::dist::{train_distributed, DistConfig, DistReport, LossPolicy};
use hisres::trainer::{train_with, TrainError, TrainOptions, TrainReport};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_comms::HeartbeatConfig;
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use std::path::PathBuf;
use std::time::Duration;

/// Must stay in lockstep with the `syn:16:3:20:5` spec handed to the
/// worker bin — both sides construct the identical dataset in memory.
const DATA_SPEC: &str = "syn:16:3:20:5";

fn tiny_data() -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 16,
        num_relations: 3,
        num_timestamps: 20,
        seed: 5,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
}

fn tiny_model() -> HisRes {
    let cfg = HisResConfig { dim: 8, conv_channels: 2, history_len: 3, ..Default::default() };
    HisRes::new(&cfg, 16, 3)
}

fn tc(epochs: usize, patience: usize) -> TrainConfig {
    TrainConfig { epochs, patience, ..Default::default() }
}

fn dist_cfg(workers: usize, extra: Vec<Vec<String>>) -> DistConfig {
    DistConfig {
        workers,
        staleness: 0,
        on_loss: LossPolicy::Respawn,
        heartbeat: HeartbeatConfig {
            interval: Duration::from_millis(50),
            timeout: Duration::from_secs(5),
        },
        step_timeout: Duration::from_secs(60),
        worker_exe: PathBuf::from(env!("CARGO_BIN_EXE_dist_worker")),
        worker_base_args: vec!["--data".into(), DATA_SPEC.into(), "--quiet".into()],
        worker_extra_args: extra,
        max_respawns: 3,
    }
}

fn temp_state(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hisres_dist_{tag}_{}.ckpt", std::process::id()))
}

/// Single-process reference run, returning (params json, report, state bytes).
fn baseline(epochs: usize, patience: usize, tag: &str) -> (String, TrainReport, Vec<u8>) {
    let data = tiny_data();
    let model = tiny_model();
    let state = temp_state(&format!("{tag}_ref"));
    let opts = TrainOptions { state_path: Some(state.clone()), ..Default::default() };
    let report = train_with(&model, &data, &tc(epochs, patience), &opts).unwrap();
    let bytes = std::fs::read(&state).unwrap();
    std::fs::remove_file(&state).ok();
    (model.store.to_json(), report, bytes)
}

/// Distributed run under `dc`, returning (params json, dist report, state bytes).
fn distributed(
    epochs: usize,
    patience: usize,
    tag: &str,
    dc: &DistConfig,
) -> Result<(String, DistReport, Vec<u8>), TrainError> {
    let data = tiny_data();
    let model = tiny_model();
    let state = temp_state(tag);
    let opts = TrainOptions { state_path: Some(state.clone()), ..Default::default() };
    let report = train_distributed(&model, &data, &tc(epochs, patience), &opts, dc)?;
    let bytes = std::fs::read(&state).unwrap();
    std::fs::remove_file(&state).ok();
    Ok((model.store.to_json(), report, bytes))
}

/// Asserts a distributed result equals the single-process reference bit
/// for bit: parameters, per-epoch losses, and the saved training state.
fn assert_byte_identical(tag: &str, epochs: usize, patience: usize, dc: &DistConfig) -> DistReport {
    let (ref_params, ref_report, ref_state) = baseline(epochs, patience, tag);
    let (params, dist, state) = distributed(epochs, patience, tag, dc).unwrap();
    assert_eq!(params, ref_params, "{tag}: final parameters diverged");
    assert_eq!(state, ref_state, "{tag}: training-state checkpoint bytes diverged");
    let bits = |r: &TrainReport| r.epoch_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&dist.train), bits(&ref_report), "{tag}: per-epoch losses diverged");
    assert_eq!(
        dist.train.best_val_mrr.to_bits(),
        ref_report.best_val_mrr.to_bits(),
        "{tag}: validation MRR diverged"
    );
    dist
}

#[test]
fn sync_two_workers_is_byte_identical_to_single_process() {
    let dist = assert_byte_identical("sync2", 3, 2, &dist_cfg(2, vec![]));
    assert!(dist.worker_losses.is_empty(), "clean run reported losses: {:?}", dist.worker_losses);
    assert_eq!(dist.respawns, 0);
}

#[test]
fn sigkilled_worker_mid_epoch_respawns_byte_identical() {
    // worker 0 SIGKILLs itself on its 3rd assigned step — mid-epoch, with
    // steps in flight; the supervisor respawns it and re-dispatches
    let extra = vec![vec!["--die-on-step".into(), "2".into()], vec![]];
    let dist = assert_byte_identical("sigkill", 2, 0, &dist_cfg(2, extra));
    assert!(dist.respawns >= 1, "the killed worker was never respawned");
    assert!(
        dist.worker_losses.iter().any(|e| e.worker == 0 && e.action == "respawn"),
        "missing the respawn event: {:?}",
        dist.worker_losses
    );
}

#[test]
fn sigkilled_worker_redistributes_byte_identical() {
    let extra = vec![vec![], vec!["--die-on-step".into(), "1".into()]];
    let mut dc = dist_cfg(2, extra);
    dc.on_loss = LossPolicy::Redistribute;
    let dist = assert_byte_identical("redist", 2, 0, &dc);
    assert_eq!(dist.respawns, 0);
    assert!(
        dist.worker_losses.iter().any(|e| e.worker == 1 && e.action == "redistribute"),
        "missing the redistribute event: {:?}",
        dist.worker_losses
    );
}

#[test]
fn torn_frame_surfaces_as_typed_fault_and_recovers_byte_identical() {
    // worker 0's 2nd result frame is cut off 8 bytes into the header
    let extra = vec![vec!["--net-faults".into(), "1:truncate".into()], vec![]];
    let dist = assert_byte_identical("torn", 2, 0, &dist_cfg(2, extra));
    assert!(
        dist.worker_losses.iter().any(|e| e.cause.contains("torn frame")),
        "expected a torn-frame cause: {:?}",
        dist.worker_losses
    );
}

#[test]
fn corrupted_checksum_surfaces_as_typed_fault_and_recovers_byte_identical() {
    let extra = vec![vec![], vec!["--net-faults".into(), "1:corrupt".into()]];
    let dist = assert_byte_identical("corrupt", 2, 0, &dist_cfg(2, extra));
    assert!(
        dist.worker_losses.iter().any(|e| e.cause.contains("checksum mismatch")),
        "expected a checksum-mismatch cause: {:?}",
        dist.worker_losses
    );
}

#[test]
fn stalled_heartbeat_is_detected_and_recovers_byte_identical() {
    // worker 0 keeps computing but goes silent after 1 beat — only the
    // failure detector can catch a wedged-but-alive process. The lease
    // must expire while the run is still in flight even in release
    // builds, hence the short timeout and the longer 8-epoch run.
    let extra = vec![vec!["--stall-heartbeats-after".into(), "1".into()], vec![]];
    let mut dc = dist_cfg(2, extra);
    dc.heartbeat =
        HeartbeatConfig { interval: Duration::from_millis(20), timeout: Duration::from_millis(150) };
    let dist = assert_byte_identical("stall", 8, 0, &dc);
    assert!(
        dist.worker_losses.iter().any(|e| e.cause.contains("heartbeat silent")),
        "expected a heartbeat-silence cause: {:?}",
        dist.worker_losses
    );
}

#[test]
fn abort_policy_returns_a_typed_worker_lost_error() {
    let extra = vec![vec!["--die-on-step".into(), "0".into()], vec![]];
    let mut dc = dist_cfg(2, extra);
    dc.on_loss = LossPolicy::Abort;
    match distributed(2, 0, "abort", &dc) {
        Err(TrainError::WorkerLost { worker: 0, .. }) => {}
        other => panic!("expected WorkerLost for worker 0, got {other:?}"),
    }
}

#[test]
fn respawn_budget_exhaustion_escalates_to_worker_lost() {
    // both workers die on every assignment; one slot burns through its
    // respawn budget and the run must fail with a typed error, not hang
    let extra =
        vec![vec!["--die-on-step".into(), "0".into()], vec!["--die-on-step".into(), "0".into()]];
    let mut dc = dist_cfg(2, extra);
    dc.max_respawns = 0;
    match distributed(2, 0, "budget", &dc) {
        Err(TrainError::WorkerLost { cause, .. }) => {
            assert!(cause.contains("respawn budget"), "unexpected cause: {cause}");
        }
        other => panic!("expected a respawn-budget WorkerLost, got {other:?}"),
    }
}

#[test]
fn async_staleness_is_run_to_run_deterministic() {
    let mut dc = dist_cfg(2, vec![]);
    dc.staleness = 2;
    let (a, _, state_a) = distributed(2, 0, "async_a", &dc).unwrap();
    let (b, _, state_b) = distributed(2, 0, "async_b", &dc).unwrap();
    assert_eq!(a, b, "async mode must be deterministic run to run");
    assert_eq!(state_a, state_b, "async training state must be deterministic run to run");
    // and it is *documented* to diverge from sync mode (derived per-step
    // RNG streams) — guard that the divergence claim stays true
    let (sync_params, _, _) = baseline(2, 0, "async_ref");
    assert_ne!(a, sync_params, "async unexpectedly matched the sync RNG schedule");
}
