//! Model-level checkpoint format tests: `HisRes::save_checkpoint` output
//! must keep its documented envelope (versioned checksummed header, kind
//! tag, JSON payload with config, vocabulary sizes, and params) and
//! `load_checkpoint` must rebuild a bit-identical model.

use hisres::eval::{evaluate, Split};
use hisres::trainer::{train, HisResEval};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_util::fsio;
use hisres_util::json::parse;

fn tiny_data(seed: u64) -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 16,
        num_relations: 3,
        num_timestamps: 20,
        seed,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
}

fn tiny_model(seed: u64) -> HisRes {
    let cfg = HisResConfig {
        dim: 8,
        conv_channels: 2,
        history_len: 3,
        seed,
        ..Default::default()
    };
    HisRes::new(&cfg, 16, 3)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hisres_ckpt_{tag}_{}.json", std::process::id()))
}

#[test]
fn checkpoint_envelope_keeps_its_documented_shape() {
    let model = tiny_model(21);
    let path = temp_path("envelope");
    model.save_checkpoint(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // one header line: MAGIC, version, kind, payload length, checksum
    let header = text.lines().next().unwrap();
    assert!(
        header.starts_with("HISRESCKPT v2 kind=model len="),
        "header changed: {header:?}"
    );
    assert!(header.contains(" crc="), "checksum field present: {header:?}");

    // the verified payload is the documented JSON checkpoint body
    let payload = fsio::open(&text, "model").unwrap();
    let v = parse(payload).unwrap();
    assert_eq!(v["num_entities"].as_u64(), Some(16));
    assert_eq!(v["num_relations"].as_u64(), Some(3));
    assert_eq!(v["config"]["dim"].as_u64(), Some(8));
    assert_eq!(v["config"]["global_aggregator"], "ConvGat");
    assert!(v["params"].get("params").is_some(), "nested parameter table present");
}

#[test]
fn load_checkpoint_rebuilds_a_bit_identical_model() {
    let data = tiny_data(22);
    let model = tiny_model(23);
    let tc = TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() };
    train(&model, &data, &tc).unwrap();

    let path = temp_path("roundtrip");
    model.save_checkpoint(&path).unwrap();
    let restored = HisRes::load_checkpoint(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(model.store.to_json(), restored.store.to_json());
    let a = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    let b = evaluate(&HisResEval { model: &restored }, &data, Split::Test);
    assert_eq!(a.mrr.to_bits(), b.mrr.to_bits());
    assert_eq!(a.hits, b.hits);
}

#[test]
fn load_checkpoint_rejects_foreign_formats() {
    // a pre-envelope (v1) bare-JSON checkpoint is not silently accepted
    let path = temp_path("badformat");
    std::fs::write(&path, r#"{"format":"some-other-checkpoint","config":{}}"#).unwrap();
    let err = match HisRes::load_checkpoint(&path) {
        Ok(_) => panic!("foreign format must be rejected"),
        Err(e) => e,
    };
    std::fs::remove_file(&path).ok();
    assert!(err.to_string().contains("checkpoint"), "got: {err}");
}

#[test]
fn load_checkpoint_rejects_training_state_files() {
    // a training-state envelope is valid fsio but the wrong species
    let path = temp_path("wrongkind");
    let sealed = fsio::seal("train-state", "{}");
    fsio::atomic_write(&path, sealed.as_bytes()).unwrap();
    let err = match HisRes::load_checkpoint(&path) {
        Ok(_) => panic!("training-state file must be rejected"),
        Err(e) => e,
    };
    std::fs::remove_file(&path).ok();
    assert!(err.to_string().contains("kind"), "got: {err}");
}
