//! End-to-end pipeline tests: generate → train → evaluate → checkpoint.

use hisres::eval::{evaluate, ExtrapolationModel, HistoryCtx, Split};
use hisres::trainer::{train, HisResEval};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_tensor::NdArray;

fn tiny_data(seed: u64) -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 20,
        num_relations: 4,
        num_timestamps: 30,
        periodic_patterns: 12,
        period_range: (3, 8),
        causal_rules: 1,
        trigger_events_per_t: 2,
        recency_draws_per_t: 2,
        noise_events_per_t: 1,
        seed,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
}

fn tiny_model(seed: u64) -> HisRes {
    let cfg = HisResConfig {
        dim: 8,
        conv_channels: 2,
        history_len: 3,
        seed,
        ..Default::default()
    };
    HisRes::new(&cfg, 20, 4)
}

struct UniformScorer;

impl ExtrapolationModel for UniformScorer {
    fn name(&self) -> String {
        "uniform".into()
    }
    fn score(&self, _ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        NdArray::zeros(queries.len(), 20)
    }
}

#[test]
fn trained_hisres_beats_uniform_scorer() {
    let data = tiny_data(1);
    let model = tiny_model(2);
    let tc = TrainConfig { epochs: 6, lr: 0.01, patience: 0, ..Default::default() };
    train(&model, &data, &tc).unwrap();
    let trained = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    let uniform = evaluate(&UniformScorer, &data, Split::Test);
    assert!(
        trained.mrr > uniform.mrr + 5.0,
        "trained {:.2} vs uniform {:.2}",
        trained.mrr,
        uniform.mrr
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let data = tiny_data(3);
        let model = tiny_model(4);
        let tc = TrainConfig { epochs: 2, lr: 0.01, patience: 0, ..Default::default() };
        train(&model, &data, &tc).unwrap();
        let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
        (r.mrr, r.hits)
    };
    assert_eq!(run(), run());
}

#[test]
fn checkpoint_round_trip_preserves_evaluation() {
    let data = tiny_data(5);
    let model = tiny_model(6);
    let tc = TrainConfig { epochs: 3, lr: 0.01, patience: 0, ..Default::default() };
    train(&model, &data, &tc).unwrap();
    let before = evaluate(&HisResEval { model: &model }, &data, Split::Test);

    let path = std::env::temp_dir().join(format!("hisres_it_ckpt_{}.json", std::process::id()));
    model.store.save_file(&path).unwrap();

    // a freshly built model with the same architecture but different seed
    let restored = tiny_model(999);
    let different = evaluate(&HisResEval { model: &restored }, &data, Split::Test);
    restored.store.load_file(&path).unwrap();
    let after = evaluate(&HisResEval { model: &restored }, &data, Split::Test);
    std::fs::remove_file(&path).ok();

    assert!((before.mrr - after.mrr).abs() < 1e-9, "{} vs {}", before.mrr, after.mrr);
    assert_ne!(before.mrr, different.mrr, "sanity: untrained weights differ");
}

#[test]
fn validation_early_stopping_never_returns_worse_than_best() {
    let data = tiny_data(7);
    let model = tiny_model(8);
    let tc = TrainConfig { epochs: 6, lr: 0.01, patience: 2, ..Default::default() };
    let report = train(&model, &data, &tc).unwrap();
    let final_valid = evaluate(&HisResEval { model: &model }, &data, Split::Valid);
    assert!((final_valid.mrr - report.best_val_mrr).abs() < 1e-9);
    assert!(report.val_mrr.iter().all(|&m| m <= report.best_val_mrr + 1e-9));
}

#[test]
fn loaded_tsv_and_programmatic_data_agree() {
    // exporting a dataset to the TSV layout and reloading it must
    // reproduce identical training behaviour
    let data = tiny_data(9);
    let dir = std::env::temp_dir().join(format!("hisres_it_tsv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = |quads: &[hisres_graph::Quad]| {
        quads
            .iter()
            .map(|q| format!("{}\t{}\t{}\t{}\n", q.s, q.r, q.o, q.t))
            .collect::<String>()
    };
    std::fs::write(dir.join("train.txt"), dump(&data.train.quads)).unwrap();
    std::fs::write(dir.join("valid.txt"), dump(&data.valid.quads)).unwrap();
    std::fs::write(dir.join("test.txt"), dump(&data.test.quads)).unwrap();
    std::fs::write(dir.join("stat.txt"), "20 4\n").unwrap();
    let reloaded = hisres_data::loader::load_dir(&dir, "reloaded", 1).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(reloaded.train.quads, data.train.quads);
    assert_eq!(reloaded.test.quads, data.test.quads);
    assert_eq!(reloaded.num_entities(), data.num_entities());

    let m1 = tiny_model(10);
    let m2 = tiny_model(10);
    let tc = TrainConfig { epochs: 1, lr: 0.01, patience: 0, ..Default::default() };
    let r1 = train(&m1, &data, &tc).unwrap();
    let r2 = train(&m2, &reloaded, &tc).unwrap();
    assert_eq!(r1.epoch_losses, r2.epoch_losses);
}
