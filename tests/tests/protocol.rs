//! Evaluation-protocol invariants that every model must satisfy.

use hisres::eval::{evaluate, ExtrapolationModel, HistoryCtx, Split};
use hisres_baselines::registry::{all_baselines, RosterConfig};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_graph::{GlobalHistoryIndex, Quad, Snapshot};
use hisres_tensor::NdArray;

fn tiny_data(seed: u64) -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 15,
        num_relations: 3,
        num_timestamps: 25,
        periodic_patterns: 8,
        period_range: (2, 6),
        causal_rules: 1,
        trigger_events_per_t: 2,
        recency_draws_per_t: 1,
        noise_events_per_t: 1,
        seed,
        ..Default::default()
    };
    DatasetSplits::from_tkg("tiny", "1 step", &generate(&cfg).tkg)
}

/// A model that cheats by memorising the whole dataset — used to verify
/// the evaluator awards a perfect score when scores are perfect.
struct Oracle {
    answers: std::collections::HashMap<(u32, u32, u32), Vec<u32>>,
    n: usize,
}

impl Oracle {
    fn new(data: &DatasetSplits) -> Self {
        let nr = data.num_relations() as u32;
        let mut answers: std::collections::HashMap<(u32, u32, u32), Vec<u32>> =
            std::collections::HashMap::new();
        for q in data.all_quads() {
            answers.entry((q.s, q.r, q.t)).or_default().push(q.o);
            let inv = q.inverse(nr);
            answers.entry((inv.s, inv.r, inv.t)).or_default().push(inv.o);
        }
        Self { answers, n: data.num_entities() }
    }
}

impl ExtrapolationModel for Oracle {
    fn name(&self) -> String {
        "oracle".into()
    }
    fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
        let mut out = NdArray::zeros(queries.len(), self.n);
        for (i, &(s, r)) in queries.iter().enumerate() {
            if let Some(os) = self.answers.get(&(s, r, ctx.t)) {
                for &o in os {
                    out.set(i, o as usize, 1.0);
                }
            }
        }
        out
    }
}

#[test]
fn oracle_gets_perfect_scores_on_all_splits() {
    let data = tiny_data(1);
    let oracle = Oracle::new(&data);
    for split in [Split::Valid, Split::Test] {
        let r = evaluate(&oracle, &data, split);
        assert!((r.mrr - 100.0).abs() < 1e-9, "{split:?}: {}", r.mrr);
        assert!((r.hits[2] - 100.0).abs() < 1e-9);
    }
}

#[test]
fn query_count_covers_raw_and_inverse() {
    let data = tiny_data(2);
    let oracle = Oracle::new(&data);
    let r = evaluate(&oracle, &data, Split::Test);
    assert_eq!(r.queries, 2 * data.test.len());
}

#[test]
fn history_context_never_contains_the_future() {
    struct HistoryChecker;
    impl ExtrapolationModel for HistoryChecker {
        fn name(&self) -> String {
            "checker".into()
        }
        fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
            // every snapshot handed to the model precedes the query time
            for s in ctx.snapshots {
                assert!(s.t < ctx.t, "future snapshot {} leaked into t={}", s.t, ctx.t);
            }
            assert_eq!(ctx.snapshots.len(), ctx.t as usize, "dense prefix expected");
            NdArray::zeros(queries.len(), ctx.num_entities)
        }
    }
    let data = tiny_data(3);
    evaluate(&HistoryChecker, &data, Split::Test);
}

#[test]
fn global_index_at_eval_time_reflects_only_the_past() {
    struct IndexChecker {
        test_quads: Vec<Quad>,
    }
    impl ExtrapolationModel for IndexChecker {
        fn name(&self) -> String {
            "index-checker".into()
        }
        fn score(&self, ctx: &HistoryCtx<'_>, queries: &[(u32, u32)]) -> NdArray {
            // facts of future test snapshots must not be in the index yet
            for q in &self.test_quads {
                if q.t >= ctx.t {
                    let seen = ctx
                        .global
                        .objects(q.s, q.r)
                        .is_some_and(|os| os.contains(&q.o));
                    // a future fact may coincide with a past one; only flag
                    // it when the exact triple never occurred before t
                    if seen {
                        continue;
                    }
                }
            }
            NdArray::zeros(queries.len(), ctx.num_entities)
        }
    }
    let data = tiny_data(4);
    let checker = IndexChecker { test_quads: data.test.quads.clone() };
    evaluate(&checker, &data, Split::Test);
}

#[test]
fn whole_roster_survives_empty_history_evaluation() {
    // models must not panic when asked to score with zero history — the
    // very first validation snapshot of a sparse dataset does this
    let roster = all_baselines(12, 2, &RosterConfig { dim: 8, history_len: 2, seed: 5 });
    let snaps: Vec<Snapshot> = Vec::new();
    let global = GlobalHistoryIndex::new();
    let ctx = HistoryCtx { snapshots: &snaps, t: 0, global: &global, num_entities: 12, num_relations: 2 };
    for m in &roster {
        let s = m.score(&ctx, &[(0, 0), (1, 3)]);
        assert_eq!(s.shape(), (2, 12), "{}", m.name());
        assert!(!s.has_non_finite(), "{}", m.name());
    }
}
