//! White-box driver tests (the Figure 1 / §3.2.2 motivation): each
//! synthetic driver rewards exactly the mechanism it was built to
//! exercise.

use hisres::eval::{evaluate, Split};
use hisres::trainer::{train, HisResEval};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_baselines::cygnet::CyGnet;
use hisres_baselines::util::FitConfig;
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_graph::EdgeList;

/// A dataset driven purely by deterministic 1-step causal rules.
fn causal_only(seed: u64) -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 25,
        num_relations: 6,
        num_timestamps: 40,
        periodic_patterns: 0,
        causal_rules: 3,
        causal_fire_prob: 1.0,
        trigger_events_per_t: 5,
        recency_draws_per_t: 0,
        noise_events_per_t: 0,
        seed,
        ..Default::default()
    };
    DatasetSplits::from_tkg("causal-only", "1 step", &generate(&cfg).tkg)
}

/// A dataset driven purely by periodic repetitions. Fast periods (2–6)
/// are visible inside a short local window too.
fn periodic_only(seed: u64) -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 25,
        num_relations: 6,
        num_timestamps: 60,
        periodic_patterns: 30,
        period_range: (2, 6),
        periodic_fire_prob: 1.0,
        causal_rules: 0,
        trigger_events_per_t: 0,
        recency_draws_per_t: 0,
        noise_events_per_t: 0,
        seed,
        ..Default::default()
    };
    DatasetSplits::from_tkg("periodic-only", "1 step", &generate(&cfg).tkg)
}

/// Periodic repetitions whose periods (8–20) are all *longer* than the
/// 3-snapshot local window — the signal lives only in the deep history,
/// which is exactly what the global relevance encoder exists for.
fn long_periodic_only(seed: u64) -> DatasetSplits {
    let cfg = SyntheticConfig {
        num_entities: 25,
        num_relations: 6,
        num_timestamps: 80,
        periodic_patterns: 40,
        period_range: (8, 20),
        periodic_fire_prob: 1.0,
        causal_rules: 0,
        trigger_events_per_t: 0,
        recency_draws_per_t: 0,
        noise_events_per_t: 1,
        seed,
        ..Default::default()
    };
    DatasetSplits::from_tkg("long-periodic", "1 step", &generate(&cfg).tkg)
}

#[test]
fn causal_pattern_is_a_two_hop_link_in_the_merged_graph() {
    // structural property behind the inter-snapshot encoder: the trigger
    // (a, r1, b, t) and follow-up (b, r2, a, t+1) form a 2-hop path in the
    // merged graph of the two snapshots
    let g = generate(&SyntheticConfig {
        periodic_patterns: 0,
        causal_fire_prob: 1.0,
        recency_draws_per_t: 0,
        noise_events_per_t: 0,
        seed: 31,
        ..Default::default()
    });
    let snaps = hisres_graph::snapshot::partition(&g.tkg);
    let (trigger_rel, follow_rel) = g.causal[0];
    let mut verified = 0;
    for w in snaps.windows(2).take(30) {
        for &(a, r, b) in &w[0].triples {
            if r != trigger_rel {
                continue;
            }
            if !w[1].triples.contains(&(b, follow_rel, a)) {
                continue;
            }
            let merged =
                EdgeList::from_merged_snapshots(&[&w[0], &w[1]], g.tkg.num_relations);
            // hop 1: a -> b (trigger), hop 2: b -> a (follow-up): both
            // directions present in one graph
            let has_hop1 = (0..merged.len())
                .any(|i| merged.src[i] == a && merged.dst[i] == b && merged.rel[i] == trigger_rel);
            let has_hop2 = (0..merged.len())
                .any(|i| merged.src[i] == b && merged.dst[i] == a && merged.rel[i] == follow_rel);
            assert!(has_hop1 && has_hop2);
            verified += 1;
        }
    }
    assert!(verified > 10, "too few causal pairs verified: {verified}");
}

#[test]
fn hisres_learns_deterministic_causal_data_well() {
    let data = causal_only(1);
    let cfg = HisResConfig { dim: 16, conv_channels: 4, history_len: 3, ..Default::default() };
    let model = HisRes::new(&cfg, 25, 6);
    train(&model, &data, &TrainConfig { epochs: 10, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
    let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    // every follow-up event is fully determined by the previous snapshot
    assert!(r.mrr > 45.0, "causal MRR only {:.2}", r.mrr);
}

#[test]
fn cygnet_excels_on_purely_periodic_data() {
    // periodic repetitions are exactly what a historical vocabulary
    // captures, so the copy-mode model must do very well here
    let data = periodic_only(2);
    let mut m = CyGnet::new(25, 6, 16, 3);
    m.fit(&data, &FitConfig { epochs: 10, lr: 0.02, ..Default::default() });
    let r = evaluate(&m, &data, Split::Test);
    assert!(r.mrr > 60.0, "periodic CyGNet MRR only {:.2}", r.mrr);
}

#[test]
fn global_encoder_carries_long_period_signal() {
    // removing the global relevance encoder must cost MRR on data whose
    // signal lives entirely beyond the local window
    let data = long_periodic_only(3);
    let tc = TrainConfig { epochs: 6, lr: 0.01, patience: 0, ..Default::default() };

    let full_cfg = HisResConfig { dim: 16, conv_channels: 4, history_len: 3, ..Default::default() };
    let full = HisRes::new(&full_cfg, 25, 6);
    train(&full, &data, &tc).unwrap();
    let full_r = evaluate(&HisResEval { model: &full }, &data, Split::Test);

    let mut wo_cfg = HisResConfig::ablation("HisRES-w/o-GH");
    wo_cfg.dim = 16;
    wo_cfg.conv_channels = 4;
    wo_cfg.history_len = 3;
    let wo = HisRes::new(&wo_cfg, 25, 6);
    train(&wo, &data, &tc).unwrap();
    let wo_r = evaluate(&HisResEval { model: &wo }, &data, Split::Test);

    assert!(
        full_r.mrr > wo_r.mrr,
        "full {:.2} should beat w/o-GH {:.2} on periodic data",
        full_r.mrr,
        wo_r.mrr
    );
}
