//! Event forecasting with explanations — the scenario from the paper's
//! Figure 1: international-relations events where a consultation one day
//! triggers a visit the next, and periodic diplomacy repeats on a
//! schedule.
//!
//! Builds a small named event stream (ICEWS-style), trains HisRES, asks
//! "who will `North_America` host a visit from?" and prints both the
//! ranked prediction and the globally-relevant historical facts the
//! ConvGAT attention weighted most.
//!
//! ```sh
//! cargo run --release --example event_forecasting
//! ```

use hisres::trainer::{query_pairs, train, HisResEval};
use hisres::{evaluate, HisRes, HisResConfig, Split, TrainConfig};
use hisres_data::DatasetSplits;
use hisres_graph::{GlobalHistoryIndex, Quad, Tkg, Vocab};
use hisres_tensor::no_grad;
use hisres_util::rng::rngs::StdRng;
use hisres_util::rng::{Rng, SeedableRng};

fn main() {
    // --- build a named event stream with planted structure ---
    let mut ents = Vocab::new();
    let mut rels = Vocab::new();
    let actors = [
        "Barack_Obama",
        "North_America",
        "Business_(Africa)",
        "Citizen_(Malaysia)",
        "Ministry_(Malaysia)",
        "UN_Security_Council",
        "European_Union",
        "Head_of_Government",
    ];
    for a in actors {
        ents.intern(a);
    }
    let consult = rels.intern("Consult");
    let host = rels.intern("Host_a_visit");
    let respond = rels.intern("Respond");
    let comment = rels.intern("Make_optimistic_comment");
    let meet = rels.intern("Meet_at_summit");

    let id = |v: &Vocab, n: &str| v.get(n).unwrap();
    let obama = id(&ents, "Barack_Obama");
    let na = id(&ents, "North_America");
    let business = id(&ents, "Business_(Africa)");
    let citizen = id(&ents, "Citizen_(Malaysia)");
    let ministry = id(&ents, "Ministry_(Malaysia)");
    let un = id(&ents, "UN_Security_Council");
    let eu = id(&ents, "European_Union");

    let mut rng = StdRng::seed_from_u64(9);
    let mut quads = Vec::new();
    for t in 0..60u32 {
        // Figure 1's causal chain: a consultation at t triggers a hosted
        // visit from the consulted party's partner at t + 1.
        if t % 3 == 0 {
            quads.push(Quad::new(obama, consult, na, t));
            quads.push(Quad::new(na, host, business, t + 1));
        }
        // the Malaysia follow-up pair from §3.2.2
        if t % 4 == 1 {
            quads.push(Quad::new(ministry, respond, citizen, t));
            quads.push(Quad::new(citizen, comment, ministry, t + 1));
        }
        // periodic summit every 6 days
        if t % 6 == 2 {
            quads.push(Quad::new(un, meet, eu, t));
        }
        // noise
        let s = rng.gen_range(0..actors.len() as u32);
        let o = rng.gen_range(0..actors.len() as u32);
        let r = rng.gen_range(0..rels.len() as u32);
        quads.push(Quad::new(s, r, o, t));
    }
    let tkg = Tkg::new(ents.len(), rels.len(), quads);
    let data = DatasetSplits::from_tkg("figure1-world", "1 day", &tkg);

    // --- train ---
    let cfg = HisResConfig { dim: 16, conv_channels: 4, history_len: 4, ..Default::default() };
    let model = HisRes::new(&cfg, ents.len(), rels.len());
    let tc = TrainConfig { epochs: 20, lr: 0.01, patience: 0, ..Default::default() };
    train(&model, &data, &tc).unwrap();
    let result = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    println!("test MRR on figure1-world: {:.2}\n", result.mrr);

    // --- forecast: who will North_America host a visit from? ---
    // use the full known timeline as history
    let all = Tkg::new(ents.len(), rels.len(), data.all_quads());
    let snaps = hisres_graph::snapshot::partition(&all);
    let predict_t = snaps.len() as u32;
    let history = &snaps[snaps.len() - cfg.history_len..];
    let mut global = GlobalHistoryIndex::new();
    for s in &snaps {
        global.add_snapshot(s, rels.len());
    }
    let queries = query_pairs(&[(na, host, business)], rels.len());
    let g_edges = global.relevant_graph(&queries);

    let mut rng = StdRng::seed_from_u64(0);
    let scores = no_grad(|| {
        let enc = model.encode(history, predict_t, &g_edges, false, &mut rng);
        model
            .score_objects(&enc, &[(na, host)], false, &mut rng)
            .value_clone()
    });
    let mut ranked: Vec<(usize, f32)> = scores.row(0).iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("query: (North_America, Host_a_visit, ?, t={predict_t})");
    println!("top 3 predictions:");
    for (rank, (e, score)) in ranked.iter().take(3).enumerate() {
        println!("  {}. {:<22} score {:.3}", rank + 1, ents.name(*e as u32).unwrap(), score);
    }

    // --- explanation: which historical facts did ConvGAT attend to? ---
    if let Some(att) = model.explain_global(history, predict_t, &g_edges) {
        let mut edges: Vec<(usize, f32)> = att.iter().copied().enumerate().collect();
        edges.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!("\nmost attended globally relevant facts:");
        for (i, w) in edges.iter().take(5) {
            let (s, r, o) = (g_edges.src[*i], g_edges.rel[*i], g_edges.dst[*i]);
            let rel_name = if (r as usize) < rels.len() {
                rels.name(r).unwrap().to_owned()
            } else {
                format!("{}⁻¹", rels.name(r - rels.len() as u32).unwrap())
            };
            println!(
                "  θ={w:.3}  ({}, {}, {})",
                ents.name(s).unwrap(),
                rel_name,
                ents.name(o).unwrap()
            );
        }
    }
}
