//! Bring your own data: load the standard benchmark TSV layout from disk
//! (the format the public ICEWS/GDELT dumps use) and train on it, or
//! build a dataset programmatically.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use hisres::trainer::{train, HisResEval};
use hisres::{evaluate, HisRes, HisResConfig, Split, TrainConfig};
use hisres_data::loader::{load_dir, parse_named_quads};
use hisres_data::synthetic::{generate, SyntheticConfig};
use hisres_data::DatasetSplits;
use hisres_graph::{Tkg, Vocab};

fn main() {
    // --- 1. the on-disk layout: train/valid/test.txt + stat.txt ---
    // Write a miniature benchmark directory (in practice this is where
    // you unpack an ICEWS dump).
    let dir = std::env::temp_dir().join("hisres_custom_dataset");
    std::fs::create_dir_all(&dir).unwrap();
    let syn = generate(&SyntheticConfig {
        num_entities: 30,
        num_relations: 5,
        num_timestamps: 40,
        seed: 77,
        ..Default::default()
    });
    let (train_q, valid_q, test_q) = {
        let d = DatasetSplits::from_tkg("tmp", "1 day", &syn.tkg);
        (d.train.quads, d.valid.quads, d.test.quads)
    };
    let dump = |quads: &[hisres_graph::Quad]| {
        quads
            .iter()
            .map(|q| format!("{}\t{}\t{}\t{}\n", q.s, q.r, q.o, q.t))
            .collect::<String>()
    };
    std::fs::write(dir.join("train.txt"), dump(&train_q)).unwrap(); // lint:allow(atomic-writes-only): example writes a throwaway fixture dataset
    std::fs::write(dir.join("valid.txt"), dump(&valid_q)).unwrap(); // lint:allow(atomic-writes-only): example writes a throwaway fixture dataset
    std::fs::write(dir.join("test.txt"), dump(&test_q)).unwrap(); // lint:allow(atomic-writes-only): example writes a throwaway fixture dataset
    std::fs::write(dir.join("stat.txt"), "30 5\n").unwrap(); // lint:allow(atomic-writes-only): example writes a throwaway fixture dataset

    let data = load_dir(&dir, "my-events", 1).expect("load benchmark directory");
    println!(
        "loaded {}: {} entities, {} relations, {} train facts",
        data.name,
        data.num_entities(),
        data.num_relations(),
        data.train.len()
    );

    let cfg = HisResConfig { dim: 16, conv_channels: 4, history_len: 3, ..Default::default() };
    let model = HisRes::new(&cfg, data.num_entities(), data.num_relations());
    train(&model, &data, &TrainConfig { epochs: 6, lr: 0.01, patience: 0, ..Default::default() }).unwrap();
    let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    println!("test MRR {:.2}\n", r.mrr);

    // --- 2. named TSV (string entities/relations) ---
    let tsv = "\
Germany\tnegotiates_with\tFrance\t0
France\tsigns_treaty\tGermany\t1
Germany\tnegotiates_with\tItaly\t1
Italy\tsigns_treaty\tGermany\t2
Germany\tnegotiates_with\tSpain\t2
Spain\tsigns_treaty\tGermany\t3
";
    let mut ents = Vocab::new();
    let mut rels = Vocab::new();
    let quads = parse_named_quads(tsv, &mut ents, &mut rels).unwrap();
    println!(
        "parsed named TSV: {} events over {} entities ({:?} relations)",
        quads.len(),
        ents.len(),
        (0..rels.len() as u32).map(|r| rels.name(r).unwrap()).collect::<Vec<_>>()
    );

    // --- 3. fully programmatic construction ---
    let tkg = Tkg::new(ents.len(), rels.len(), quads);
    println!(
        "programmatic Tkg: {} quads across {} timestamps",
        tkg.len(),
        tkg.num_timestamps()
    );

    std::fs::remove_dir_all(&dir).ok();
}
