//! Quickstart: train HisRES on a synthetic temporal knowledge graph and
//! report time-aware filtered metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hisres::eval::{evaluate, Split};
use hisres::trainer::{train, HisResEval};
use hisres::{HisRes, HisResConfig, TrainConfig};
use hisres_data::datasets::load;

fn main() {
    // 1. Load a dataset. `load` generates a seeded synthetic analog of
    //    ICEWS14s; real data in the standard train/valid/test.txt layout
    //    loads through `hisres_data::loader::load_dir`.
    let data = load("icews14s-syn");
    println!(
        "dataset: {} — {} entities, {} relations, {}/{}/{} train/valid/test facts",
        data.name,
        data.num_entities(),
        data.num_relations(),
        data.train.len(),
        data.valid.len(),
        data.test.len()
    );

    // 2. Configure the model. Defaults follow the paper's architecture
    //    (2-layer GNNs, granularity 2, ConvGAT global encoder) at CPU
    //    scale; every ablation switch lives on this struct.
    let cfg = HisResConfig {
        dim: 32,
        conv_channels: 8,
        history_len: 3,
        ..Default::default()
    };
    let model = HisRes::new(&cfg, data.num_entities(), data.num_relations());
    println!("model: {} trainable scalars", model.store.num_scalars());

    // 3. Train with validation-based early stopping.
    let tc = TrainConfig {
        epochs: 8,
        lr: 0.01, // scaled up from the paper's 1e-3 for the small CPU step budget
        patience: 3,
        verbose: true,
        ..Default::default()
    };
    let report = train(&model, &data, &tc).unwrap();
    println!(
        "trained {} epochs; best validation MRR {:.2}",
        report.epochs_run, report.best_val_mrr
    );

    // 4. Evaluate with the paper's protocol.
    let result = evaluate(&HisResEval { model: &model }, &data, Split::Test);
    println!();
    println!("test results (time-aware filtered, x100):");
    println!(
        "  MRR {:.2}   Hits@1 {:.2}   Hits@3 {:.2}   Hits@10 {:.2}",
        result.mrr, result.hits[0], result.hits[1], result.hits[2]
    );

    // 5. Persist the trained parameters.
    let path = std::env::temp_dir().join("hisres_quickstart.json");
    model.store.save_file(&path).expect("checkpoint write");
    println!("checkpoint saved to {}", path.display());
}
