//! Ablation study on your own data: toggle each HisRES component and see
//! what it contributes — the programmatic version of the paper's Table 4.
//!
//! ```sh
//! cargo run --release --example ablation_study
//! ```

use hisres::trainer::{train, HisResEval};
use hisres::{evaluate, HisRes, HisResConfig, Split, TrainConfig};
use hisres_data::datasets::load;

fn main() {
    let data = load("icews14s-syn");
    let variants = [
        ("HisRES (full)", "HisRES"),
        ("- multi-granularity evolutionary encoder", "HisRES-w/o-G"),
        ("- global relevance encoder", "HisRES-w/o-GH"),
        ("- inter-snapshot granularity", "HisRES-w/o-MG"),
        ("- self-gating (local fusion)", "HisRES-w/o-SG1"),
        ("- self-gating (global fusion)", "HisRES-w/o-SG2"),
        ("- relation updating", "HisRES-w/o-RU"),
        ("ConvGAT -> CompGCN", "HisRES-w/-CompGCN"),
        ("ConvGAT -> RGAT", "HisRES-w/-RGAT"),
    ];

    println!("ablation study on {} ({} test facts)\n", data.name, data.test.len());
    println!("{:<44} {:>8} {:>8} {:>8} {:>8}", "variant", "MRR", "H@1", "H@3", "H@10");

    let tc = TrainConfig { epochs: 6, lr: 0.01, patience: 0, ..Default::default() };
    let mut full_mrr = None;
    for (label, preset) in variants {
        let mut cfg = HisResConfig::ablation(preset);
        cfg.dim = 32;
        cfg.conv_channels = 8;
        cfg.history_len = 3;
        let model = HisRes::new(&cfg, data.num_entities(), data.num_relations());
        train(&model, &data, &tc).unwrap();
        let r = evaluate(&HisResEval { model: &model }, &data, Split::Test);
        let marker = match full_mrr {
            None => {
                full_mrr = Some(r.mrr);
                String::new()
            }
            Some(full) => format!("  ({:+.2} vs full)", r.mrr - full),
        };
        println!(
            "{:<44} {:>8.2} {:>8.2} {:>8.2} {:>8.2}{marker}",
            label, r.mrr, r.hits[0], r.hits[1], r.hits[2]
        );
    }
}
