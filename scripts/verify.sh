#!/usr/bin/env bash
# Hermetic verification: the workspace must build and test with zero network
# access and zero external crates. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

# ---- guard: no non-path dependency may reappear in any workspace manifest --
# Legitimate dependency lines name a workspace crate (`workspace = true`) or
# an explicit `path = "..."`. Anything with `version = "..."`, a bare version
# string, `git = `, or `registry = ` would reintroduce a network fetch.
fail=0
while IFS= read -r manifest; do
    # strip comments, then keep only lines inside [*dependencies*] sections
    bad=$(awk '
        /^[[:space:]]*#/ { next }
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && NF {
            line = $0
            sub(/#.*/, "", line)
            if (line ~ /^\[/) next
            if (line !~ /=/) next
            if (line ~ /workspace[[:space:]]*=[[:space:]]*true/) next
            if (line ~ /path[[:space:]]*=/) next
            print FILENAME ": " line
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: non-path dependency found:" >&2
        echo "$bad" >&2
        fail=1
    fi
done < <(find . -path ./target -prune -o -name Cargo.toml -print)

if [ "$fail" -ne 0 ]; then
    echo "verify.sh: the build must stay hermetic — declare new code as a" >&2
    echo "workspace path crate instead of a crates.io dependency." >&2
    exit 1
fi
echo "dependency guard: OK (path-only workspace)"

# ---- build + test fully offline, with warnings denied ----------------------
# The workspace must stay warning-free: a new dead-code or unused-import
# warning is a review comment waiting to happen, so it fails verification.
RUSTFLAGS="-D warnings" cargo build --workspace --release --offline
RUSTFLAGS="-D warnings" cargo test --workspace -q --offline

smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT

# ---- workspace invariant lint ----------------------------------------------
# hisres-lint v2: a lexer + recursive-descent parser + workspace call graph.
# Token rules still police per-line invariants (atomic writes, determinism,
# float-eq, pool-only threading); the graph rules (panic-reachability,
# no-hot-alloc-reachable, durability-order) follow calls across crates from
# the serving/ingest/distributed entry set to the actual sink. --deny-all
# escalates warnings; the tree must be clean AND every lint:allow must still
# be load-bearing (stale suppressions are diagnostics too). The whole
# analysis — lex, parse, call graph, reachability — has a 10 s budget.
lint=target/release/hisres-lint
lint_start=$(date +%s)
"$lint" --deny-all
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -gt 10 ]; then
    echo "ERROR: hisres-lint took ${lint_elapsed}s — over the 10s budget" >&2
    exit 1
fi
echo "invariant lint: OK (hisres-lint --deny-all clean in ${lint_elapsed}s, budget 10s)"

# The JSON rendering is a stable schema for downstream tooling (mirrors the
# BENCH_kernels.json pattern): emit a report, then re-validate it.
"$lint" --deny-all --json --out "$smoke/lint.json"
"$lint" --check "$smoke/lint.json"
if ! grep -qF '"schema":"hisres-lint/v2"' "$smoke/lint.json"; then
    echo "ERROR: lint report does not carry the hisres-lint/v2 schema tag" >&2
    exit 1
fi
echo "invariant lint JSON: OK (schema-checked hisres-lint/v2 report)"

# The lint must actually catch violations: the bad fixture tree carries one
# violation per rule and must fail with exact file:line diagnostics.
if bad_out=$("$lint" --root crates/lint/tests/fixtures/bad --deny-all 2>&1); then
    echo "ERROR: hisres-lint passed the bad fixture tree — rules are dead" >&2
    exit 1
fi
for needle in \
    'crates/core/src/serve.rs:4:' \
    'crates/comms/src/frame.rs:4:' \
    'crates/comms/src/frame.rs:5:' \
    'crates/core/src/dist.rs:4:' \
    'crates/core/src/ingest.rs:4:' \
    'crates/util/src/wal.rs:4:' \
    'crates/nn/src/fastpath.rs:3:' \
    'crates/nn/src/fastpath.rs:4:' \
    'crates/nn/src/fastpath.rs:5:' \
    'panic-reachability' \
    'no-hot-alloc-reachable' \
    'atomic-writes-only' \
    'pool-only-threading' \
    'determinism' \
    'no-debug-leftovers' \
    'float-eq' \
    'lint-allow-syntax'; do
    if ! grep -qF "$needle" <<<"$bad_out"; then
        echo "ERROR: bad-fixture lint output is missing $needle:" >&2
        echo "$bad_out" >&2
        exit 1
    fi
done
echo "invariant lint fixtures: OK (bad tree fails with per-rule diagnostics)"

# Each graph rule has its own fixture tree where the violation is invisible
# at token level: the sink sits in a different file (or crate) than the
# entry point and only the call graph connects them. Every tree must fail
# with the exact diagnostic position AND the entry-to-sink chain.
check_graph_fixture() {
    local tree=$1; shift
    local out
    if out=$("$lint" --root "crates/lint/tests/fixtures/$tree" --deny-all 2>&1); then
        echo "ERROR: hisres-lint passed the $tree fixture tree — the graph rule is dead" >&2
        exit 1
    fi
    for needle in "$@"; do
        if ! grep -qF "$needle" <<<"$out"; then
            echo "ERROR: $tree lint output is missing $needle:" >&2
            echo "$out" >&2
            exit 1
        fi
    done
}
check_graph_fixture bad_reach \
    'crates/graph/src/cmp.rs:5:10: error[panic-reachability]' \
    'chain: core::serve::handle → graph::cmp::pick → slice-index-without-guard'
check_graph_fixture bad_hot \
    'crates/nn/src/scratch.rs:4:5: error[no-hot-alloc-reachable]' \
    'chain: nn::fastpath::forward_nograd → nn::scratch::grow → vec!'
check_graph_fixture bad_durability \
    'crates/util/src/wal.rs:7:5: error[durability-order]' \
    'chain: util::wal::append → write_all@6 → reply@7' \
    'crates/util/src/fsio.rs:8:7: error[durability-order]' \
    'chain: util::fsio::atomic_write → write_all@8 → ∅ rename'
echo "invariant lint graph fixtures: OK (each graph rule fails its tree with a pinned chain)"

# ---- crash-resume smoke test -----------------------------------------------
# Train 2 epochs saving training state, then resume for 2 more; the final
# model checkpoint must be byte-identical to a straight 4-epoch run.
bin=target/release/hisres
"$bin" generate --dataset icews14s-syn --out "$smoke/data" >/dev/null
common=(--data "$smoke/data" --dim 8 --epochs 4 --patience 0 --quiet)
"$bin" train "${common[@]}" --out "$smoke/straight.ckpt" 2>/dev/null
"$bin" train --data "$smoke/data" --dim 8 --epochs 2 --patience 0 --quiet \
    --out "$smoke/partial.ckpt" --state "$smoke/state.ckpt" 2>/dev/null
"$bin" train "${common[@]}" --out "$smoke/resumed.ckpt" \
    --resume "$smoke/state.ckpt" 2>/dev/null
if ! cmp -s "$smoke/straight.ckpt" "$smoke/resumed.ckpt"; then
    echo "ERROR: resumed training (2+2 epochs) is not bit-identical to a" >&2
    echo "straight 4-epoch run — deterministic resume is broken." >&2
    exit 1
fi
echo "crash-resume smoke test: OK (2+2 epochs == 4 epochs, byte-identical)"

# ---- serve smoke test -------------------------------------------------------
# Drive the JSONL serving loop end to end over the checkpoint trained above:
# a valid query, malformed JSON, an out-of-range id, an OOV name, and a
# zero-budget request must produce structured responses (typed error kinds,
# a `"degraded":true` answer) and a final stats block, with exit code 0.
# The load itself runs with injected transient read faults to exercise the
# bounded-retry path.
serve_out=$(printf '%s\n' \
    '{"s": 3, "r": 1, "topk": 3, "id": "q1"}' \
    'this is not json' \
    '{"s": 99999, "r": 1}' \
    '{"s": "NoSuchEntity", "r": 1}' \
    '{"s": 3, "r": 1, "budget_ms": 0}' \
    '{"cmd": "stats"}' \
    | "$bin" serve --model "$smoke/straight.ckpt" --data "$smoke/data" \
        --inject-load-faults 2 --load-retries 3 2>/dev/null)
for needle in \
    '"id":"q1"' \
    '"kind":"bad_json"' \
    '"kind":"entity_out_of_range"' \
    '"kind":"unknown_entity"' \
    '"degraded":true' \
    '"reason":"budget"' \
    '"stats":{"requests":6' \
    '"p50_ms"'; do
    if ! grep -qF "$needle" <<<"$serve_out"; then
        echo "ERROR: serve smoke test output is missing $needle:" >&2
        echo "$serve_out" >&2
        exit 1
    fi
done
echo "serve smoke test: OK (typed errors, budget degradation, stats, retried load)"

# ---- concurrent serve smoke test --------------------------------------------
# Two *simultaneous* TCP clients against the concurrent front end: each
# tags its requests with its own ids, and every reply must come back on
# the right connection, in request order. A third connection then issues
# {"cmd":"shutdown"} and the server process must exit cleanly.
"$bin" serve --model "$smoke/straight.ckpt" --data "$smoke/data" \
    --listen 127.0.0.1:0 --workers 2 --max-conns 3 \
    2>"$smoke/serve_err.log" &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$smoke/serve_err.log")
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "ERROR: concurrent serve never reported its listen port:" >&2
    cat "$smoke/serve_err.log" >&2
    exit 1
fi
run_client() {
    local tag=$1
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf '{"s": 1, "r": 0, "id": "%s-1"}\n{"s": 2, "r": 1, "id": "%s-2"}\n' \
        "$tag" "$tag" >&3
    head -n 2 <&3
    exec 3>&- 3<&-
}
run_client a >"$smoke/client_a.out" &
a_pid=$!
run_client b >"$smoke/client_b.out" &
b_pid=$!
wait "$a_pid" "$b_pid"
for tag in a b; do
    other=$([ "$tag" = a ] && echo b || echo a)
    out="$smoke/client_$tag.out"
    for needle in "\"id\":\"$tag-1\"" "\"id\":\"$tag-2\""; do
        if ! grep -qF "$needle" "$out"; then
            echo "ERROR: concurrent client $tag is missing its reply $needle:" >&2
            cat "$out" >&2
            exit 1
        fi
    done
    if grep -qF "\"id\":\"$other-" "$out"; then
        echo "ERROR: client $tag received client $other's replies (cross-wired):" >&2
        cat "$out" >&2
        exit 1
    fi
done
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf '{"cmd": "shutdown"}\n' >&3
if ! head -n 1 <&3 | grep -qF '"shutdown":true'; then
    echo "ERROR: shutdown command was not acknowledged" >&2
    exit 1
fi
exec 3>&- 3<&-
if ! wait "$serve_pid"; then
    echo "ERROR: concurrent serve exited non-zero after shutdown" >&2
    cat "$smoke/serve_err.log" >&2
    exit 1
fi
if ! grep -qF "concurrent front end: 2 worker(s)" "$smoke/serve_err.log"; then
    echo "ERROR: serve did not start the concurrent front end:" >&2
    cat "$smoke/serve_err.log" >&2
    exit 1
fi
echo "concurrent serve smoke test: OK (2 simultaneous clients, no cross-wiring, clean shutdown)"

# ---- thread-count determinism smoke test ------------------------------------
# The data-parallel kernel layer must never change results: training the
# same model at 1 and 4 worker threads must produce byte-identical
# checkpoints.
HISRES_THREADS=1 "$bin" train --data "$smoke/data" --dim 8 --epochs 2 \
    --patience 0 --quiet --out "$smoke/t1.ckpt" 2>/dev/null
HISRES_THREADS=4 "$bin" train --data "$smoke/data" --dim 8 --epochs 2 \
    --patience 0 --quiet --out "$smoke/t4.ckpt" 2>/dev/null
if ! cmp -s "$smoke/t1.ckpt" "$smoke/t4.ckpt"; then
    echo "ERROR: training at HISRES_THREADS=1 vs =4 produced different" >&2
    echo "checkpoints — the parallel kernels are not deterministic." >&2
    exit 1
fi
echo "thread determinism smoke test: OK (1-thread == 4-thread checkpoint)"

# ---- distributed training smoke test ----------------------------------------
# Sync-mode distributed training must be byte-identical to single-process
# training on the same seed (t1.ckpt from the smoke above uses the same
# flags), and must STAY byte-identical when a worker is SIGKILLed
# mid-epoch and respawned by the supervisor.
"$bin" train --data "$smoke/data" --dim 8 --epochs 2 --patience 0 --quiet \
    --distributed --workers 2 --out "$smoke/dist.ckpt" 2>/dev/null
if ! cmp -s "$smoke/t1.ckpt" "$smoke/dist.ckpt"; then
    echo "ERROR: --distributed --workers 2 produced a different checkpoint" >&2
    echo "than single-process training — sync mode is not byte-identical." >&2
    exit 1
fi
"$bin" train --data "$smoke/data" --dim 8 --epochs 2 --patience 0 --quiet \
    --distributed --workers 2 --dist-die-on 0@2 \
    --out "$smoke/dist_kill.ckpt" 2>"$smoke/dist_kill.log"
if ! grep -q "dist: worker 0 recovered in .* via respawn" "$smoke/dist_kill.log"; then
    echo "ERROR: the forced worker kill was never detected/recovered:" >&2
    cat "$smoke/dist_kill.log" >&2
    exit 1
fi
if ! cmp -s "$smoke/t1.ckpt" "$smoke/dist_kill.ckpt"; then
    echo "ERROR: the checkpoint differs after a worker was SIGKILLed" >&2
    echo "mid-epoch and respawned — crash recovery is not byte-identical." >&2
    exit 1
fi
echo "distributed smoke test: OK (2-worker sync == single-process, kill-recovery byte-identical)"

# ---- online ingestion crash-recovery smoke test ------------------------------
# Serve with a live WAL-backed ingest session, stream ingest batches at it,
# SIGKILL the server mid-stream, restart it over the same WAL, replay the
# client's stream (already-durable batches must come back as duplicates),
# and demand the recovered server's query scores match an uninterrupted
# reference run exactly.
ingest_line() {
    printf '{"cmd":"ingest","seq":%d,"quads":[[%d,0,%d]]}\n' \
        "$1" "$(( $1 % 5 ))" "$(( ($1 + 1) % 5 ))"
}
start_ingest_serve() {
    # $1: WAL path, $2: stderr log. Sets ingest_pid and ingest_port.
    "$bin" serve --model "$smoke/straight.ckpt" --data "$smoke/data" \
        --listen 127.0.0.1:0 --wal "$1" --snapshot-every 2 2>"$2" &
    ingest_pid=$!
    ingest_port=""
    for _ in $(seq 1 100); do
        ingest_port=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$2")
        [ -n "$ingest_port" ] && break
        sleep 0.1
    done
    if [ -z "$ingest_port" ]; then
        echo "ERROR: ingest serve never reported its listen port:" >&2
        cat "$2" >&2
        exit 1
    fi
}

# Reference run: six batches, a query, a clean shutdown.
start_ingest_serve "$smoke/ref.wal" "$smoke/ingest_ref.log"
exec 3<>"/dev/tcp/127.0.0.1/$ingest_port"
for seq in 1 2 3 4 5 6; do
    ingest_line "$seq" >&3
    if ! head -n 1 <&3 | grep -qF '"ingest":"applied"'; then
        echo "ERROR: reference ingest seq $seq was not applied" >&2
        exit 1
    fi
done
printf '{"s": 3, "r": 1, "topk": 5, "id": "qref"}\n{"cmd": "shutdown"}\n' >&3
ref_preds=$(head -n 2 <&3 | grep -o '"predictions":\[[^]]*\]' || true)
exec 3>&- 3<&-
wait "$ingest_pid"
if [ -z "$ref_preds" ]; then
    echo "ERROR: reference ingest run produced no predictions" >&2
    exit 1
fi

# Crash run: three acknowledged batches, a fourth racing a SIGKILL.
start_ingest_serve "$smoke/crash.wal" "$smoke/ingest_crash.log"
exec 3<>"/dev/tcp/127.0.0.1/$ingest_port"
for seq in 1 2 3; do
    ingest_line "$seq" >&3
    head -n 1 <&3 >/dev/null
done
ingest_line 4 >&3
kill -9 "$ingest_pid"
wait "$ingest_pid" 2>/dev/null || true
exec 3>&- 3<&- || true

# Restart over the same WAL: the session must announce its recovery, the
# replayed stream must be applied-or-deduplicated, and the query must be
# byte-identical to the uninterrupted reference.
start_ingest_serve "$smoke/crash.wal" "$smoke/ingest_recover.log"
if ! grep -q "ingest session open:" "$smoke/ingest_recover.log"; then
    echo "ERROR: restarted serve did not report its ingest recovery:" >&2
    cat "$smoke/ingest_recover.log" >&2
    exit 1
fi
exec 3<>"/dev/tcp/127.0.0.1/$ingest_port"
for seq in 1 2 3 4 5 6; do
    ingest_line "$seq" >&3
    reply=$(head -n 1 <&3)
    if ! grep -qE '"ingest":"(applied|duplicate)"' <<<"$reply"; then
        echo "ERROR: replayed ingest seq $seq was rejected after restart:" >&2
        echo "$reply" >&2
        exit 1
    fi
done
printf '{"s": 3, "r": 1, "topk": 5, "id": "qrec"}\n{"cmd": "stats"}\n{"cmd": "shutdown"}\n' >&3
recover_out=$(head -n 3 <&3)
exec 3>&- 3<&-
wait "$ingest_pid"
rec_preds=$(grep -o '"predictions":\[[^]]*\]' <<<"$recover_out" || true)
if [ "$ref_preds" != "$rec_preds" ]; then
    echo "ERROR: scores after kill -9 + restart differ from the" >&2
    echo "uninterrupted run:" >&2
    echo "  reference: $ref_preds" >&2
    echo "  recovered: $rec_preds" >&2
    exit 1
fi
if ! grep -qF '"applied_seq":6' <<<"$recover_out"; then
    echo "ERROR: recovered server stats never reached applied_seq 6:" >&2
    echo "$recover_out" >&2
    exit 1
fi
echo "ingest crash-recovery smoke test: OK (kill -9 mid-ingest, restart, byte-identical scores)"

# ---- kernel bench smoke test ------------------------------------------------
# A quick bench sweep must run end to end, emit a BENCH_kernels.json that
# parses against the hisres_util::json schema (--check re-reads it), and
# pass the quick regression gate against the committed quick baseline.
# Tolerance is 1.0 (fail only past 2x) because quick samples on a shared
# container are noisy; the tight 25% gate is the full-shape
# `scripts/bench.sh --kernels --regress BENCH_kernels.json`.
scripts/bench.sh --quick --out "$smoke/BENCH_kernels.json" \
  --regress BENCH_kernels_quick.json --tolerance 1.0 >/dev/null
target/release/kernels --check "$smoke/BENCH_kernels.json"
echo "kernel bench smoke test: OK (quick sweep + schema check + regression gate)"

# ---- serving bench smoke test -----------------------------------------------
# A quick load-generator sweep must run end to end against a live
# concurrent server and emit a BENCH_serve.json that passes its own schema
# check (stage outcomes adding up, rejections measured in the burst stage,
# fallback answers measured in the degraded stage).
scripts/bench.sh --serve --quick --out "$smoke/BENCH_serve.json" >/dev/null
target/release/loadgen --check "$smoke/BENCH_serve.json"
echo "serving bench smoke test: OK (quick load sweep + JSON schema check)"

# ---- distributed bench smoke test -------------------------------------------
# A quick distributed sweep must run end to end — real worker processes,
# an injected SIGKILL, byte-identity re-checked inside the bench — and
# emit a BENCH_dist.json that passes its own schema check.
scripts/bench.sh --dist --quick --out "$smoke/BENCH_dist.json" >/dev/null
target/release/distbench --check "$smoke/BENCH_dist.json"
echo "distributed bench smoke test: OK (quick sweep + JSON schema check)"

# ---- ingestion bench smoke test ----------------------------------------------
# A quick ingestion durability sweep must run end to end — real WAL fsyncs,
# state snapshots, and a timed cold restart per configuration — and emit a
# BENCH_ingest.json that passes its own schema check.
scripts/bench.sh --ingest --quick --out "$smoke/BENCH_ingest.json" >/dev/null
target/release/ingestbench --check "$smoke/BENCH_ingest.json"
echo "ingestion bench smoke test: OK (quick sweep + JSON schema check)"

echo "verify.sh: OK"
