#!/usr/bin/env bash
# Hermetic verification: the workspace must build and test with zero network
# access and zero external crates. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

# ---- guard: no non-path dependency may reappear in any workspace manifest --
# Legitimate dependency lines name a workspace crate (`workspace = true`) or
# an explicit `path = "..."`. Anything with `version = "..."`, a bare version
# string, `git = `, or `registry = ` would reintroduce a network fetch.
fail=0
while IFS= read -r manifest; do
    # strip comments, then keep only lines inside [*dependencies*] sections
    bad=$(awk '
        /^[[:space:]]*#/ { next }
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && NF {
            line = $0
            sub(/#.*/, "", line)
            if (line ~ /^\[/) next
            if (line !~ /=/) next
            if (line ~ /workspace[[:space:]]*=[[:space:]]*true/) next
            if (line ~ /path[[:space:]]*=/) next
            print FILENAME ": " line
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: non-path dependency found:" >&2
        echo "$bad" >&2
        fail=1
    fi
done < <(find . -path ./target -prune -o -name Cargo.toml -print)

if [ "$fail" -ne 0 ]; then
    echo "verify.sh: the build must stay hermetic — declare new code as a" >&2
    echo "workspace path crate instead of a crates.io dependency." >&2
    exit 1
fi
echo "dependency guard: OK (path-only workspace)"

# ---- build + test fully offline --------------------------------------------
cargo build --workspace --release --offline
cargo test --workspace -q --offline

echo "verify.sh: OK"
