#!/usr/bin/env bash
# Regenerates every table and figure of the paper, saving raw outputs under
# results/. Pass --quick to run the 2-epoch smoke configuration.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
QUICK="${1:-}"
for bin in table2 table3 table4 fig5a fig5b prune_sweep multistep history_sweep; do
  echo "=== $bin ==="
  cargo run --release -p hisres-bench --bin "$bin" -- $QUICK | tee "results/$bin.txt"
done
echo "all outputs written to results/"
