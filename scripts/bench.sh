#!/usr/bin/env bash
# Kernel performance harness: builds and runs the `kernels` bench binary,
# which sweeps the parallel tensor kernels over 1/2/4 worker threads plus
# serial seed-reference kernels, and writes BENCH_kernels.json at the repo
# root (atomic write; previous results are replaced).
#
#   scripts/bench.sh            full shapes (the EXPERIMENTS.md numbers)
#   scripts/bench.sh --quick    CI-sized shapes, a few seconds end to end
#
# Extra arguments are passed through to the binary (e.g. --out FILE).
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline -p hisres-bench --bin kernels
target/release/kernels "$@"
