#!/usr/bin/env bash
# Performance harnesses. Default mode builds and runs the `kernels` bench
# binary, which sweeps the parallel tensor kernels over 1/2/4 worker
# threads plus serial seed-reference kernels, and writes
# BENCH_kernels.json at the repo root (atomic write; previous results are
# replaced). `--serve` instead runs the `loadgen` serving benchmark, which
# sweeps offered load against the concurrent TCP front end and writes
# BENCH_serve.json (throughput, p50/p99, degraded/rejected fractions).
#
#
# `--dist` runs the `distbench` distributed-training benchmark: epoch
# wall-clock for `train --distributed` sync mode at 1/2/4 workers (plus a
# single-process reference and an async point) and the supervisor's
# recovery latency after an injected worker SIGKILL, written to
# BENCH_dist.json. It needs the `hisres` CLI binary as the worker
# executable, so that is built too.
#
# `--ingest` runs the `ingestbench` online-ingestion benchmark: a sweep
# of ingest batch size × state-snapshot cadence through a WAL-backed
# IngestSession, measuring per-batch latency (fsync + incremental encoder
# advance), quad throughput, WAL growth, and cold-restart recovery time,
# written to BENCH_ingest.json.
#
#   scripts/bench.sh                    kernel sweep, full shapes
#   scripts/bench.sh --kernels          same, spelled explicitly
#   scripts/bench.sh --kernels --out /tmp/fresh.json --regress BENCH_kernels.json
#                                       kernel sweep plus the regression
#                                       gate: fails if any threads=1 median
#                                       of matmul / decoder_score /
#                                       eval_rank_fanout regressed >25%
#                                       against the committed baseline
#   scripts/bench.sh --quick            kernel sweep, CI-sized
#   scripts/bench.sh --serve            serving load sweep, full size
#   scripts/bench.sh --serve --quick    serving load sweep, CI-sized
#   scripts/bench.sh --dist             distributed-training sweep
#   scripts/bench.sh --dist --quick     distributed sweep, CI-sized
#   scripts/bench.sh --ingest           ingestion durability sweep
#   scripts/bench.sh --ingest --quick   ingestion sweep, CI-sized
#
# Extra arguments are passed through to the binary (e.g. --out FILE).
set -euo pipefail

cd "$(dirname "$0")/.."

bin=kernels
case "${1:-}" in
  --kernels)
    shift
    ;;
  --serve)
    bin=loadgen
    shift
    ;;
  --dist)
    bin=distbench
    shift
    # the distributed bench spawns the CLI binary as its worker fleet
    cargo build --release --offline -p hisres-cli
    ;;
  --ingest)
    bin=ingestbench
    shift
    ;;
esac

cargo build --release --offline -p hisres-bench --bin "$bin"
"target/release/$bin" "$@"
