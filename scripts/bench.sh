#!/usr/bin/env bash
# Performance harnesses. Default mode builds and runs the `kernels` bench
# binary, which sweeps the parallel tensor kernels over 1/2/4 worker
# threads plus serial seed-reference kernels, and writes
# BENCH_kernels.json at the repo root (atomic write; previous results are
# replaced). `--serve` instead runs the `loadgen` serving benchmark, which
# sweeps offered load against the concurrent TCP front end and writes
# BENCH_serve.json (throughput, p50/p99, degraded/rejected fractions).
#
#   scripts/bench.sh                    kernel sweep, full shapes
#   scripts/bench.sh --quick            kernel sweep, CI-sized
#   scripts/bench.sh --serve            serving load sweep, full size
#   scripts/bench.sh --serve --quick    serving load sweep, CI-sized
#
# Extra arguments are passed through to the binary (e.g. --out FILE).
set -euo pipefail

cd "$(dirname "$0")/.."

bin=kernels
if [[ "${1:-}" == "--serve" ]]; then
  bin=loadgen
  shift
fi

cargo build --release --offline -p hisres-bench --bin "$bin"
"target/release/$bin" "$@"
